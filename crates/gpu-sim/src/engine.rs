//! The discrete-event execution engine.
//!
//! A kernel launch dispatches its thread blocks round-robin over the
//! `n_SM` SMs. Each SM hosts up to `k` co-resident blocks (a *wave*);
//! within a wave the blocks' memory and compute segments interleave on
//! the SM's **memory pipe** and **compute pipe** under greedy
//! earliest-start list scheduling — loads of one block overlap compute
//! of another, exactly the mechanism the paper's Eqn 12 idealizes.
//! Waves on one SM run back-to-back; the kernel completes when its
//! slowest SM drains; the next wavefront's kernel then launches after a
//! host synchronization (`T_sync`), matching the structure of the
//! paper's Eqn 2.
//!
//! Everything is deterministic: ties break on block index, and identical
//! kernels (interior wavefronts share their class vectors via `Arc`) are
//! computed once and reused.
//!
//! Scheduling is closed-form where possible: round-robin dealing of
//! class runs is periodic, so [`kernel_time`] derives each SM's wave
//! sequence directly from the class prefix sums in O(distinct classes)
//! ([`schedule_steady`]) and only falls back to materializing the full
//! dispatch order ([`kernel_time_dealing`]) when a wave mixes more
//! classes than the inline composition can hold. Both paths intern wave
//! compositions and fold per-SM finish times in the same order, so they
//! agree to exact `f64` bit equality.

use crate::cost::{self, BlockSegments, Pipe};
use crate::device::DeviceConfig;
use crate::occupancy::{occupancy, LaunchError};
use crate::report::SimReport;
use crate::workload::SimWorkload;
use hhc_tiling::plan::BlockClass;
use std::collections::HashMap;
use std::sync::Arc;

/// Simulate `wl` on `device`, returning the machine's measured time.
///
/// ```
/// use gpu_sim::{simulate, DeviceConfig, SimWorkload};
/// use hhc_tiling::{LaunchConfig, TileSizes, TilingPlan};
/// use stencil_core::{ProblemSize, StencilKind};
///
/// let spec = StencilKind::Jacobi2D.spec();
/// let size = ProblemSize::new_2d(1024, 1024, 128);
/// let plan = TilingPlan::build(&spec, &size, TileSizes::new_2d(8, 8, 128),
///                              LaunchConfig::new_2d(1, 128)).unwrap();
/// let report = simulate(&DeviceConfig::gtx980(), &SimWorkload::from_plan(&plan)).unwrap();
/// assert!(report.total_time > 0.0);
/// assert_eq!(report.kernel_launches, plan.kernel_count());
/// ```
pub fn simulate(device: &DeviceConfig, wl: &SimWorkload) -> Result<SimReport, LaunchError> {
    simulate_core(device, wl, false).map(|(report, _)| report)
}

/// Simulate and additionally return the per-kernel timeline — for
/// inspection, examples, and tests; [`simulate`] is the cheap path.
pub fn simulate_detailed(
    device: &DeviceConfig,
    wl: &SimWorkload,
) -> Result<(SimReport, Vec<KernelBreakdown>), LaunchError> {
    simulate_core(device, wl, true)
}

/// Shared core of [`simulate`] and [`simulate_detailed`]: one occupancy
/// query, one kernel-stats cache, one telemetry pass. The detailed
/// variant only additionally records a [`KernelBreakdown`] per launch,
/// so the two can never drift.
fn simulate_core(
    device: &DeviceConfig,
    wl: &SimWorkload,
    detailed: bool,
) -> Result<(SimReport, Vec<KernelBreakdown>), LaunchError> {
    let occ = occupancy(device, wl)?;
    let mut cache: HashMap<usize, KernelStats> = HashMap::new();
    let mut total = 0.0f64;
    let mut mem_busy = 0.0f64;
    let mut comp_busy = 0.0f64;
    // One relaxed atomic load; all telemetry below is skipped when no
    // recorder is installed.
    let telemetry = obs::active();
    let mut blocks_total = 0u64;
    let mut waves_total = 0u64;
    let mut kernels = Vec::with_capacity(if detailed { wl.kernels.len() } else { 0 });
    for (index, kernel) in wl.kernels.iter().enumerate() {
        let key = Arc::as_ptr(&kernel.classes) as usize;
        let stats = cache
            .entry(key)
            .or_insert_with(|| kernel_time(device, wl, &kernel.classes, occ.k));
        total += stats.makespan + device.t_launch;
        mem_busy += stats.mem_busy;
        comp_busy += stats.comp_busy;
        if detailed {
            kernels.push(KernelBreakdown {
                index,
                blocks: kernel.block_count(),
                makespan: stats.makespan,
                mem_busy: stats.mem_busy,
                comp_busy: stats.comp_busy,
            });
        }
        if telemetry {
            blocks_total += stats.blocks;
            waves_total += stats.waves;
            obs::event(
                obs::Level::Debug,
                "sim.kernel",
                &[
                    ("index", index.into()),
                    ("blocks", stats.blocks.into()),
                    ("waves", stats.waves.into()),
                    ("makespan_s", stats.makespan.into()),
                ],
            );
        }
    }
    if telemetry {
        obs::counter("sim.runs", 1);
        obs::counter("sim.kernel_launches", wl.kernels.len() as u64);
        obs::counter("sim.blocks", blocks_total);
        obs::counter("sim.waves", waves_total);
        obs::histogram("sim.total_time_s", total);
        obs::histogram("sim.pipe_mem_busy_s", mem_busy);
        obs::histogram("sim.pipe_comp_busy_s", comp_busy);
        // Utilization is a property of each distinct kernel schedule, so
        // sample once per cache entry rather than once per launch.
        let (mut util_sum, mut util_n) = (0.0f64, 0u64);
        for stats in cache.values() {
            if stats.makespan > 0.0 {
                for &finish in &stats.sm_finish {
                    let u = finish / stats.makespan;
                    obs::histogram("sim.sm_utilization", u);
                    util_sum += u;
                    util_n += 1;
                }
            }
        }
        if util_n > 0 {
            obs::gauge("sim.sm_utilization_mean", util_sum / util_n as f64);
        }
    }
    let launch_overhead = wl.kernels.len() as f64 * device.t_launch;
    let report = SimReport {
        total_time: total,
        kernel_launches: wl.kernels.len(),
        occupancy: occ,
        mem_busy,
        comp_busy,
        launch_overhead,
        spill_factor: cost::spill_factor(device, wl),
        divergence_factor: cost::divergence_factor(device, wl.inner_threads),
    };
    Ok((report, kernels))
}

/// Timing summary of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Completion time of the slowest SM.
    pub makespan: f64,
    /// Aggregate memory-pipe busy time across SMs.
    pub mem_busy: f64,
    /// Aggregate compute-pipe busy time across SMs.
    pub comp_busy: f64,
    /// Thread blocks in the launch.
    pub blocks: u64,
    /// Waves scheduled across all SMs.
    pub waves: u64,
    /// Per-SM drain time (the makespan is their max).
    pub sm_finish: Vec<f64>,
}

/// Per-kernel timing of a detailed simulation (see [`simulate_detailed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelBreakdown {
    /// Kernel index in launch order.
    pub index: usize,
    /// Thread blocks launched.
    pub blocks: u64,
    /// Makespan of the kernel (excluding the launch overhead).
    pub makespan: f64,
    /// Aggregate memory-pipe busy time across SMs.
    pub mem_busy: f64,
    /// Aggregate compute-pipe busy time across SMs.
    pub comp_busy: f64,
}

/// Lower every class once and compute the launch-wide aggregates that
/// both scheduling paths share. The pipe-busy sums iterate the classes
/// in declaration order so both paths fold identically.
fn lower_classes(
    device: &DeviceConfig,
    wl: &SimWorkload,
    classes: &[BlockClass],
) -> (Vec<(u64, BlockSegments)>, u64, f64, f64) {
    let lowered: Vec<(u64, BlockSegments)> = classes
        .iter()
        .map(|c| (c.count, cost::lower_block(device, wl, c)))
        .collect();
    let total_blocks: u64 = lowered.iter().map(|(c, _)| c).sum();
    let mem_busy: f64 = lowered.iter().map(|(c, b)| *c as f64 * b.mem_time).sum();
    let comp_busy: f64 = lowered.iter().map(|(c, b)| *c as f64 * b.comp_time).sum();
    (lowered, total_blocks, mem_busy, comp_busy)
}

/// Makespan of one kernel: distribute blocks over SMs, schedule each
/// SM's waves, take the slowest SM.
///
/// Uses the O(distinct classes) steady-state schedule; falls back to the
/// exact dealing loop when a wave's composition overflows
/// [`MAX_WAVE_RUNS`] runs. The two paths are bit-identical (see
/// `sched_properties.rs`).
pub fn kernel_time(
    device: &DeviceConfig,
    wl: &SimWorkload,
    classes: &[BlockClass],
    k: usize,
) -> KernelStats {
    let (lowered, total_blocks, mem_busy, comp_busy) = lower_classes(device, wl, classes);
    if total_blocks == 0 {
        return KernelStats {
            makespan: 0.0,
            mem_busy: 0.0,
            comp_busy: 0.0,
            blocks: 0,
            waves: 0,
            sm_finish: Vec::new(),
        };
    }
    let n_sm = device.n_sm;
    let k = k.max(1);
    let mut table = WaveCostTable::default();
    let (schedule, steady) = match schedule_steady(n_sm, k, total_blocks, &lowered, &mut table) {
        Some(s) => (s, true),
        None => (
            schedule_dealing(n_sm, k, total_blocks, &lowered, &mut table),
            false,
        ),
    };
    if obs::active() {
        obs::counter(
            if steady {
                "sim.sched_steady"
            } else {
                "sim.sched_fallback"
            },
            1,
        );
    }
    KernelStats {
        makespan: schedule.makespan,
        mem_busy,
        comp_busy,
        blocks: total_blocks,
        waves: schedule.waves,
        sm_finish: schedule.sm_finish,
    }
}

/// Reference oracle: [`kernel_time`] computed by materializing the full
/// dispatch order and dealing it block by block. Always exact; used by
/// tests to pin the steady-state schedule bit-for-bit.
pub fn kernel_time_dealing(
    device: &DeviceConfig,
    wl: &SimWorkload,
    classes: &[BlockClass],
    k: usize,
) -> KernelStats {
    let (lowered, total_blocks, mem_busy, comp_busy) = lower_classes(device, wl, classes);
    if total_blocks == 0 {
        return KernelStats {
            makespan: 0.0,
            mem_busy: 0.0,
            comp_busy: 0.0,
            blocks: 0,
            waves: 0,
            sm_finish: Vec::new(),
        };
    }
    let mut table = WaveCostTable::default();
    let schedule = schedule_dealing(device.n_sm, k.max(1), total_blocks, &lowered, &mut table);
    KernelStats {
        makespan: schedule.makespan,
        mem_busy,
        comp_busy,
        blocks: total_blocks,
        waves: schedule.waves,
        sm_finish: schedule.sm_finish,
    }
}

/// Maximum distinct class runs in one wave's inline composition. Real
/// plans have 1–3 classes, so one wave mixing more than six runs is
/// vanishingly rare; such kernels take the exact dealing fallback.
const MAX_WAVE_RUNS: usize = 6;

/// A wave's composition as run-length-encoded class indices: the wave
/// executes `runs[0].1` blocks of class `runs[0].0`, then `runs[1].1`
/// blocks of class `runs[1].0`, and so on. Round-robin dealing preserves
/// dispatch order per SM, so class indices are non-decreasing and the
/// encoding is canonical — equal compositions hash equal, replacing the
/// `Vec<u16>` clone the wave cache used to key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct WaveComp {
    runs: [(u32, u32); MAX_WAVE_RUNS],
    len: u8,
}

impl WaveComp {
    fn new() -> Self {
        Self::default()
    }

    /// A full wave of `count` blocks all of class `class` — the steady
    /// state that dominates every regular launch.
    fn pure(class: u32, count: u32) -> Self {
        let mut c = Self::new();
        c.runs[0] = (class, count);
        c.len = 1;
        c
    }

    /// Append a run; returns `false` on overflow (caller falls back).
    fn push(&mut self, class: u32, count: u32) -> bool {
        if count == 0 {
            return true;
        }
        if self.len > 0 && self.runs[self.len as usize - 1].0 == class {
            self.runs[self.len as usize - 1].1 += count;
            return true;
        }
        if (self.len as usize) == MAX_WAVE_RUNS {
            return false;
        }
        self.runs[self.len as usize] = (class, count);
        self.len += 1;
        true
    }

    /// The wave's blocks in dispatch order.
    fn blocks<'a>(
        &'a self,
        lowered: &'a [(u64, BlockSegments)],
    ) -> impl Iterator<Item = &'a BlockSegments> {
        self.runs[..self.len as usize]
            .iter()
            .flat_map(move |&(c, n)| std::iter::repeat_n(&lowered[c as usize].1, n as usize))
    }
}

/// Interns wave compositions and computes each distinct wave's cost
/// exactly once.
#[derive(Default)]
struct WaveCostTable {
    ids: HashMap<WaveComp, u32>,
    costs: Vec<f64>,
}

impl WaveCostTable {
    fn id_of(&mut self, comp: WaveComp, lowered: &[(u64, BlockSegments)]) -> u32 {
        if let Some(&id) = self.ids.get(&comp) {
            return id;
        }
        let cost = wave_cost(comp.blocks(lowered));
        let id = self.costs.len() as u32;
        self.costs.push(cost);
        self.ids.insert(comp, id);
        id
    }

    fn cost(&self, id: u32) -> f64 {
        self.costs[id as usize]
    }
}

/// One kernel's schedule across all SMs.
struct Schedule {
    makespan: f64,
    waves: u64,
    sm_finish: Vec<f64>,
}

/// Append `rep` waves of composition `id` to an SM signature, merging
/// adjacent identical runs (pure merging keeps the fold order intact —
/// the same cost is added the same number of times either way).
fn push_sig(sig: &mut Vec<(u32, u64)>, id: u32, rep: u64) {
    if let Some(last) = sig.last_mut() {
        if last.0 == id {
            last.1 += rep;
            return;
        }
    }
    sig.push((id, rep));
}

/// Closed-form steady-state schedule.
///
/// Round-robin dealing sends global dispatch position `p` to SM
/// `p % n_sm` at local index `p / n_sm`, so SM `s` holds local index `l`
/// ⇔ position `p = s + l·n_sm`, and with class prefix sums (class `c`
/// occupies positions `[prefix[c], prefix[c+1])`) every wave's
/// composition is computable without materializing the order. Runs of
/// full single-class waves — the steady state — collapse into one
/// `(composition, repeat)` signature entry; irregular waves at class
/// boundaries and the tail are composed run by run. Per-SM finish times
/// fold wave costs in the exact order the dealing loop does, and SMs
/// with identical signatures share one fold, so results are bit-equal to
/// [`schedule_dealing`].
///
/// Returns `None` when a wave mixes more than [`MAX_WAVE_RUNS`] class
/// runs; the caller then takes the dealing fallback.
fn schedule_steady(
    n_sm: usize,
    k: usize,
    total: u64,
    lowered: &[(u64, BlockSegments)],
    table: &mut WaveCostTable,
) -> Option<Schedule> {
    let nsm = n_sm as u64;
    let ku = k as u64;
    let kw = u32::try_from(ku).ok()?;
    // prefix[c] = blocks dispatched before class c.
    let mut prefix = Vec::with_capacity(lowered.len() + 1);
    let mut acc = 0u64;
    prefix.push(0);
    for (count, _) in lowered {
        acc += count;
        prefix.push(acc);
    }
    let mut sm_finish = vec![0.0f64; n_sm];
    let mut makespan = 0.0f64;
    let mut waves_total = 0u64;
    // SMs with identical wave signatures share one finish-time fold.
    let mut memo: Vec<(Vec<(u32, u64)>, f64)> = Vec::new();
    let mut sig: Vec<(u32, u64)> = Vec::new();
    for (s, finish_slot) in sm_finish.iter_mut().enumerate() {
        let su = s as u64;
        if su >= total {
            break; // the remaining SMs receive no blocks
        }
        let n_s = (total - su).div_ceil(nsm);
        let n_waves = n_s.div_ceil(ku);
        waves_total += n_waves;
        sig.clear();
        let mut w = 0u64;
        let mut cls = 0usize;
        while w < n_waves {
            let first = w * ku;
            let in_wave = ku.min(n_s - first);
            let p0 = su + first * nsm;
            while prefix[cls + 1] <= p0 {
                cls += 1;
            }
            if in_wave == ku {
                // Largest local index of class `cls` on this SM
                // (prefix[cls+1] > p0 ≥ su, so the subtraction is safe).
                let l_max = (prefix[cls + 1] - 1 - su) / nsm;
                if l_max >= first + ku - 1 {
                    // This wave is full and single-class; extend the run
                    // to the last wave that is both.
                    let w_pure = (l_max - (ku - 1)) / ku;
                    let w_full = (n_s - ku) / ku;
                    let w_end = w_pure.min(w_full);
                    debug_assert!(w_end >= w);
                    let id = table.id_of(WaveComp::pure(cls as u32, kw), lowered);
                    push_sig(&mut sig, id, w_end - w + 1);
                    w = w_end + 1;
                    continue;
                }
            }
            // Irregular wave (class boundary or short tail): compose it
            // run by run.
            let mut comp = WaveComp::new();
            let mut i = 0u64;
            let mut c = cls;
            while i < in_wave {
                let p = p0 + i * nsm;
                while prefix[c + 1] <= p {
                    c += 1;
                }
                let upto = (prefix[c + 1] - p0).div_ceil(nsm);
                let n = upto.min(in_wave) - i;
                if !comp.push(c as u32, n as u32) {
                    return None;
                }
                i += n;
            }
            let id = table.id_of(comp, lowered);
            push_sig(&mut sig, id, 1);
            w += 1;
        }
        let mut hit: Option<f64> = None;
        for (seen, finish) in &memo {
            if seen == &sig {
                hit = Some(*finish);
                break;
            }
        }
        let finish = match hit {
            Some(f) => f,
            None => {
                // Fold in dealing order: one addition per wave.
                let mut t = 0.0f64;
                for &(id, rep) in &sig {
                    let cost = table.cost(id);
                    for _ in 0..rep {
                        t += cost;
                    }
                }
                memo.push((sig.clone(), t));
                t
            }
        };
        *finish_slot = finish;
        makespan = makespan.max(finish);
    }
    Some(Schedule {
        makespan,
        waves: waves_total,
        sm_finish,
    })
}

/// Run-length encode one dealt wave slice (non-decreasing class
/// indices); `None` if it needs more than [`MAX_WAVE_RUNS`] runs.
fn comp_of_slice(wave: &[u16]) -> Option<WaveComp> {
    let mut comp = WaveComp::new();
    let mut i = 0;
    while i < wave.len() {
        let c = wave[i];
        let mut j = i + 1;
        while j < wave.len() && wave[j] == c {
            j += 1;
        }
        if !comp.push(c as u32, (j - i) as u32) {
            return None;
        }
        i = j;
    }
    Some(comp)
}

/// Exact reference schedule: expand the dispatch order (class after
/// class) and deal round-robin to SMs, as the hardware's block scheduler
/// does for a grid. Wave costs are still interned by composition —
/// virtually all waves are identical — with an uncached [`wave_cost`]
/// for the rare composition that overflows the inline encoding.
fn schedule_dealing(
    n_sm: usize,
    k: usize,
    total: u64,
    lowered: &[(u64, BlockSegments)],
    table: &mut WaveCostTable,
) -> Schedule {
    let mut order: Vec<u16> = Vec::with_capacity(total as usize);
    for (idx, (count, _)) in lowered.iter().enumerate() {
        order.extend(std::iter::repeat_n(idx as u16, *count as usize));
    }
    let mut per_sm: Vec<Vec<u16>> = vec![Vec::new(); n_sm];
    for (pos, cls) in order.iter().enumerate() {
        per_sm[pos % n_sm].push(*cls);
    }
    let mut makespan = 0.0f64;
    let mut waves = 0u64;
    let mut sm_finish = vec![0.0f64; n_sm];
    for (sm_idx, sm) in per_sm.iter().enumerate() {
        let mut t = 0.0;
        for wave in sm.chunks(k) {
            waves += 1;
            let cost = match comp_of_slice(wave) {
                Some(comp) => {
                    let id = table.id_of(comp, lowered);
                    table.cost(id)
                }
                None => wave_cost(wave.iter().map(|&c| &lowered[c as usize].1)),
            };
            t += cost;
        }
        sm_finish[sm_idx] = t;
        makespan = makespan.max(t);
    }
    Schedule {
        makespan,
        waves,
        sm_finish,
    }
}

/// Two-pipe greedy list schedule of the co-resident blocks of one wave.
///
/// Each block is a sequential chain of segments; the memory pipe and the
/// compute pipe each execute one segment at a time. At every step the
/// block whose next segment can start earliest (ties: lowest block
/// index) is scheduled. Returns the completion time of the last segment.
fn wave_cost<'a>(blocks: impl Iterator<Item = &'a BlockSegments>) -> f64 {
    struct St<'a> {
        segs: &'a [cost::Segment],
        next: usize,
        ready: f64,
    }
    let mut st: Vec<St<'_>> = blocks
        .map(|b| St {
            segs: &b.segments,
            next: 0,
            ready: 0.0,
        })
        .collect();
    let mut mem_free = 0.0f64;
    let mut comp_free = 0.0f64;
    let mut finish = 0.0f64;
    loop {
        // Find the runnable segment with the earliest possible start.
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in st.iter().enumerate() {
            if s.next >= s.segs.len() {
                continue;
            }
            let pipe_free = match s.segs[s.next].pipe {
                Pipe::Mem => mem_free,
                Pipe::Comp => comp_free,
            };
            let start = s.ready.max(pipe_free);
            if best.is_none_or(|(bs, _)| start < bs) {
                best = Some((start, i));
            }
        }
        let Some((start, i)) = best else { break };
        let seg = st[i].segs[st[i].next];
        let end = start + seg.dur;
        match seg.pipe {
            Pipe::Mem => mem_free = end,
            Pipe::Comp => comp_free = end,
        }
        st[i].ready = end;
        st[i].next += 1;
        finish = finish.max(end);
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimWorkload;

    fn tiny_device(n_sm: usize) -> DeviceConfig {
        // Allow a block to own the whole shared memory so tests can
        // force k = 1 (real devices cap blocks at half — which is why
        // the paper's Section 5.1 always sees k ≥ 2).
        let mut d = DeviceConfig::gtx980();
        d.n_sm = n_sm;
        d.shared_per_block_words = d.shared_mem_words;
        d
    }

    /// SimWorkload of one kernel with `blocks` identical blocks.
    fn wl_blocks(blocks: u64, subtiles: u64, mtile: u64) -> SimWorkload {
        let mut wl = SimWorkload::uniform(
            1,
            blocks,
            subtiles,
            2048,
            2048,
            vec![[1024, 1, 1], [1024, 1, 1]],
            128,
            32,
        );
        wl.mtile_words = mtile;
        wl
    }

    #[test]
    fn single_block_is_sequential_plus_launch() {
        let d = tiny_device(1);
        let wl = wl_blocks(1, 4, d.shared_mem_words); // k = 1
        let r = simulate(&d, &wl).unwrap();
        assert_eq!(r.occupancy.k, 1);
        // Sequential chain: total = Σ segments + launch.
        let classes = &wl.kernels[0].classes;
        let b = cost::lower_block(&d, &wl, &classes[0]);
        let expect = b.sequential() + d.t_launch;
        assert!(
            (r.total_time - expect).abs() < 1e-12,
            "{} vs {}",
            r.total_time,
            expect
        );
    }

    #[test]
    fn k1_blocks_serialize_on_one_sm() {
        let d = tiny_device(1);
        let wl1 = wl_blocks(1, 4, d.shared_mem_words);
        let wl3 = wl_blocks(3, 4, d.shared_mem_words);
        let t1 = simulate(&d, &wl1).unwrap().total_time - d.t_launch;
        let t3 = simulate(&d, &wl3).unwrap().total_time - d.t_launch;
        assert!((t3 - 3.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn hyperthreading_overlaps_memory_and_compute() {
        let d = tiny_device(1);
        // M_tile = half the SM → k = 2.
        let wl = wl_blocks(2, 8, d.shared_mem_words / 2);
        let r = simulate(&d, &wl).unwrap();
        assert_eq!(r.occupancy.k, 2);
        let b = cost::lower_block(&d, &wl, &wl.kernels[0].classes[0]);
        let seq2 = 2.0 * b.sequential();
        let lower_bound = (2.0 * b.mem_time).max(2.0 * b.comp_time);
        let t = r.total_time - d.t_launch;
        assert!(t < seq2, "no overlap achieved: {t} vs {seq2}");
        assert!(
            t >= lower_bound - 1e-15,
            "beat the pipe bound: {t} vs {lower_bound}"
        );
    }

    #[test]
    fn blocks_spread_over_sms() {
        let d1 = tiny_device(1);
        let d4 = tiny_device(4);
        let wl = wl_blocks(8, 4, d1.shared_mem_words); // k = 1
        let t1 = simulate(&d1, &wl).unwrap().total_time;
        let t4 = simulate(&d4, &wl).unwrap().total_time;
        assert!(t4 < t1 / 3.0, "4 SMs not ~4x faster: {t4} vs {t1}");
    }

    #[test]
    fn launch_overhead_charged_per_kernel() {
        let d = tiny_device(2);
        let one = SimWorkload::uniform(1, 1, 1, 64, 64, vec![[128, 1, 1]], 128, 32);
        let ten = SimWorkload::uniform(10, 1, 1, 64, 64, vec![[128, 1, 1]], 128, 32);
        let r1 = simulate(&d, &one).unwrap();
        let r10 = simulate(&d, &ten).unwrap();
        assert!((r10.total_time - 10.0 * r1.total_time).abs() < 1e-12);
        assert!((r10.launch_overhead - 10.0 * d.t_launch).abs() < 1e-18);
    }

    #[test]
    fn deterministic() {
        let d = DeviceConfig::gtx980();
        let wl = wl_blocks(37, 5, d.shared_mem_words / 3);
        let a = simulate(&d, &wl).unwrap();
        let b = simulate(&d, &wl).unwrap();
        assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    }

    #[test]
    fn remainder_blocks_create_tail() {
        // 17 blocks on 16 SMs: one SM runs two waves → ~2x the makespan
        // of 16 blocks.
        let d = tiny_device(16);
        let w16 = wl_blocks(16, 4, d.shared_mem_words);
        let w17 = wl_blocks(17, 4, d.shared_mem_words);
        let t16 = simulate(&d, &w16).unwrap().total_time - d.t_launch;
        let t17 = simulate(&d, &w17).unwrap().total_time - d.t_launch;
        assert!(
            (t17 - 2.0 * t16).abs() < 1e-12,
            "tail effect missing: {t17} vs {t16}"
        );
    }

    #[test]
    fn detailed_matches_summary() {
        let d = DeviceConfig::gtx980();
        let wl = wl_blocks(24, 5, d.shared_mem_words / 3);
        let summary = simulate(&d, &wl).unwrap();
        let (report, kernels) = simulate_detailed(&d, &wl).unwrap();
        assert_eq!(report.total_time.to_bits(), summary.total_time.to_bits());
        assert_eq!(kernels.len(), wl.kernels.len());
        let sum: f64 = kernels.iter().map(|k| k.makespan).sum();
        let expect = report.total_time - report.launch_overhead;
        assert!((sum - expect).abs() < 1e-15, "{sum} vs {expect}");
        assert!(kernels.iter().all(|k| k.blocks == 24));
    }

    #[test]
    fn heterogeneous_classes_deal_round_robin() {
        // Two classes of very different cost: the makespan must reflect
        // the SM that received the expensive block, not an average.
        use hhc_tiling::plan::{BlockClass, WavefrontPlan};
        use std::sync::Arc;
        let d = tiny_device(2);
        let cheap = BlockClass {
            count: 3,
            s1_widths: vec![128],
            mi_rows: vec![64],
            mo_rows: vec![64],
            axis2: BlockClass::unit_axis(1),
            axis3: BlockClass::unit_axis(1),
        };
        let expensive = BlockClass {
            count: 1,
            s1_widths: vec![128 * 64],
            mi_rows: vec![64],
            mo_rows: vec![64],
            axis2: BlockClass::unit_axis(1),
            axis3: BlockClass::unit_axis(1),
        };
        let mk = |classes: Vec<BlockClass>| {
            let mut wl = SimWorkload::uniform(1, 0, 0, 0, 0, vec![], 128, 32);
            wl.kernels = vec![WavefrontPlan {
                classes: Arc::new(classes),
            }];
            wl.mtile_words = d.shared_mem_words; // k = 1
            wl
        };
        let hetero = simulate(&d, &mk(vec![expensive.clone(), cheap.clone()])).unwrap();
        let only_cheap = simulate(&d, &mk(vec![cheap])).unwrap();
        let only_exp = simulate(&d, &mk(vec![expensive])).unwrap();
        // Compare kernel makespans (the launch overhead is a constant).
        let kt = |r: &crate::report::SimReport| r.total_time - r.launch_overhead;
        assert!(kt(&hetero) >= kt(&only_exp) - 1e-15);
        assert!(kt(&hetero) > 2.0 * kt(&only_cheap));
    }

    #[test]
    fn memory_only_blocks_serialize_on_the_mem_pipe() {
        let d = tiny_device(1);
        d.n_sm.checked_mul(1).unwrap();
        // k large but all work is memory: co-residency cannot help.
        let wl = SimWorkload::uniform(1, 4, 4, 4096, 4096, vec![], 128, 32);
        let r = simulate(&d, &wl).unwrap();
        assert!(r.occupancy.k > 1);
        let t = r.total_time - d.t_launch;
        assert!(
            (t - r.mem_busy).abs() / r.mem_busy < 0.01,
            "mem-only kernel should be pipe-bound: {t} vs busy {}",
            r.mem_busy
        );
    }

    #[test]
    fn empty_kernel_costs_launch_only() {
        let d = DeviceConfig::gtx980();
        let wl = SimWorkload::uniform(1, 0, 0, 0, 0, vec![], 128, 32);
        let r = simulate(&d, &wl).unwrap();
        assert!((r.total_time - d.t_launch).abs() < 1e-18);
    }

    /// The steady-state schedule must reproduce the dealing loop exactly
    /// — including `sm_finish`, wave counts, and every bit of the fp
    /// fold — across class mixes, SM counts, and occupancies.
    #[test]
    fn steady_matches_dealing_bitwise() {
        use hhc_tiling::plan::{BlockClass, WavefrontPlan};
        use std::sync::Arc;
        let cls = |count: u64, width: u64| BlockClass {
            count,
            s1_widths: vec![width],
            mi_rows: vec![64],
            mo_rows: vec![64],
            axis2: BlockClass::unit_axis(1),
            axis3: BlockClass::unit_axis(1),
        };
        let cases: Vec<Vec<BlockClass>> = vec![
            vec![cls(1, 128)],
            vec![cls(97, 128)],
            vec![cls(3, 128), cls(1, 4096)],
            vec![cls(16, 64), cls(0, 32), cls(17, 256)],
            vec![cls(5, 64), cls(5, 128), cls(5, 256), cls(5, 512)],
            // Many single-block classes: with large k a wave mixes > 6
            // runs, forcing the dealing fallback on a 1-SM device.
            (0..10).map(|i| cls(1, 64 + 8 * i)).collect(),
        ];
        for n_sm in [1usize, 2, 3, 7, 16] {
            let mut d = DeviceConfig::gtx980();
            d.n_sm = n_sm;
            for classes in &cases {
                let mut wl = SimWorkload::uniform(1, 0, 0, 0, 0, vec![], 128, 32);
                wl.kernels = vec![WavefrontPlan {
                    classes: Arc::new(classes.clone()),
                }];
                for k in [1usize, 2, 3, 5, 8, 13] {
                    let steady = kernel_time(&d, &wl, classes, k);
                    let dealing = kernel_time_dealing(&d, &wl, classes, k);
                    assert_eq!(steady.makespan.to_bits(), dealing.makespan.to_bits());
                    assert_eq!(steady.mem_busy.to_bits(), dealing.mem_busy.to_bits());
                    assert_eq!(steady.comp_busy.to_bits(), dealing.comp_busy.to_bits());
                    assert_eq!(steady.blocks, dealing.blocks);
                    assert_eq!(steady.waves, dealing.waves);
                    assert_eq!(steady.sm_finish.len(), dealing.sm_finish.len());
                    for (a, b) in steady.sm_finish.iter().zip(&dealing.sm_finish) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }
}
