//! The per-block cost model: lowering a block class to its memory and
//! compute segments, including the second-order effects the paper's
//! analytical model deliberately leaves out.
//!
//! A block executes its sub-tiles sequentially; each sub-tile is a
//! `load → compute → store` chain. The compute part runs the hexagon
//! rows bottom-to-top with a barrier per row (the `τ_sync` terms of the
//! paper's Eqns 9/15/27). All sub-tile quantities are *separable* across
//! the inner axes (see `hhc_tiling::plan`), so block totals are computed
//! in O(rows × axis classes) and the engine schedules a bounded chain of
//! uniform load/compute/store chunks whose totals are exact.
//!
//! Machine-level effects charged here:
//!
//! * **Per-dimension thread mapping**: the generated code assigns the
//!   thread-block axes to the tile axes, so a row of extents
//!   `(e1, e2, e3)` executed by `(n1, n2, n3)` threads takes
//!   `∏ ⌈e_d / n_d⌉` rounds — threads along `s2` cannot serve extra `s1`
//!   width. With an aligned launch this reduces to the model's `⌈I/n_V⌉`;
//!   mismatched thread shapes waste issue slots — the unmodeled `n_thr`
//!   effect of the paper's Section 7.
//! * **Warp divergence**: an innermost thread extent that is not a
//!   multiple of the warp size leaves lanes idle in every warp.
//! * **Register pressure of the unrolled body**: HHC fully unrolls the
//!   per-tile code, so live registers grow with the points each thread
//!   covers per row. Demand beyond the compiler's allocation ceiling
//!   spills to local memory and slows compute — the "only known after
//!   nvcc" effect (paper Section 6.1) and the machine-level reason the
//!   conventional maximize-the-footprint wisdom fails (Section 7).
//! * **Coalescing**: global transfers move 32-word transactions; short
//!   contiguous runs waste bandwidth.

use crate::device::DeviceConfig;
use crate::workload::SimWorkload;
use hhc_tiling::plan::{AxisClass, BlockClass};

/// Which pipe a segment occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipe {
    /// Global-memory pipe of the SM.
    Mem,
    /// Arithmetic pipe (vector units).
    Comp,
}

/// One schedulable segment of a block: a pipe and a duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The pipe this segment occupies.
    pub pipe: Pipe,
    /// Duration in seconds.
    pub dur: f64,
}

/// A block lowered to its alternating segment sequence plus summary
/// totals (used by the engine and its tests).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSegments {
    /// The segments in execution order: one `load → compute → store`
    /// triple per scheduled chunk (sub-tiles are grouped into at most
    /// [`MAX_CHUNKS`] chunks; totals are exact).
    pub segments: Vec<Segment>,
    /// Total memory time (sum of `Mem` segments).
    pub mem_time: f64,
    /// Total compute time (sum of `Comp` segments).
    pub comp_time: f64,
}

impl BlockSegments {
    /// Strictly sequential duration (no overlap) — what a `k = 1`
    /// residency costs.
    pub fn sequential(&self) -> f64 {
        self.mem_time + self.comp_time
    }
}

/// Maximum load/compute/store chunks a block is scheduled as. Enough
/// alternations for faithful pipe interleaving, bounded so 3D blocks
/// with tens of thousands of sub-tiles stay cheap to schedule.
pub const MAX_CHUNKS: u64 = 64;

/// `⌈e/n⌉` rounds along one axis.
#[inline]
fn axis_rounds(extent: u64, threads: usize) -> u64 {
    extent.div_ceil(threads.max(1) as u64)
}

/// Count-weighted rounds sum of an axis at row `r`:
/// `Σ_classes count · ⌈width/n⌉` (zero-width rows contribute nothing).
#[inline]
fn axis_rounds_sum(axis: &[AxisClass], r: usize, threads: usize) -> u64 {
    axis.iter()
        .map(|c| c.count * axis_rounds(c.widths[r], threads))
        .sum()
}

/// Number of sub-tiles of an axis active (nonzero width) at row `r`.
#[inline]
fn axis_active(axis: &[AxisClass], r: usize) -> u64 {
    axis.iter()
        .filter(|c| c.widths[r] > 0)
        .map(|c| c.count)
        .sum()
}

/// Points each thread covers in the widest row of the workload — the
/// unroll depth of the generated body.
pub fn points_per_thread(wl: &SimWorkload) -> u64 {
    let [n1, n2, n3] = wl.threads_dims;
    wl.kernels
        .iter()
        .flat_map(|k| k.classes.iter())
        .map(|c| {
            (0..c.row_count())
                .map(|r| {
                    let m2 = c
                        .axis2
                        .iter()
                        .map(|a| axis_rounds(a.widths[r], n2))
                        .max()
                        .unwrap_or(0);
                    let m3 = c
                        .axis3
                        .iter()
                        .map(|a| axis_rounds(a.widths[r], n3))
                        .max()
                        .unwrap_or(0);
                    axis_rounds(c.s1_widths[r], n1) * m2 * m3
                })
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Register demand per thread of the fully-unrolled tile body: the base
/// estimate plus live values per unrolled point.
pub fn unrolled_regs_per_thread(wl: &SimWorkload) -> u32 {
    let unroll = (4 * points_per_thread(wl)).min(4096) as u32;
    wl.regs_per_thread.saturating_add(unroll)
}

/// Compute slowdown factor from register spilling: 1.0 when the demand
/// fits the compiler's allocation ceiling, growing linearly with the
/// spilled fraction beyond it.
pub fn spill_factor(device: &DeviceConfig, wl: &SimWorkload) -> f64 {
    let demand = unrolled_regs_per_thread(wl) as f64;
    let cap = device.reg_alloc_target as f64;
    if demand <= cap {
        1.0
    } else {
        1.0 + device.spill_coeff * (demand - cap) / cap
    }
}

/// Warp-divergence factor ≥ 1: full warps cost 1.0; an innermost extent
/// of `inner` threads pads each warp group to a multiple of the warp
/// size.
pub fn divergence_factor(device: &DeviceConfig, inner_threads: usize) -> f64 {
    let w = device.warp_size;
    let inner = inner_threads.max(1);
    let padded = inner.div_ceil(w) * w;
    padded as f64 / inner as f64
}

/// Effective words charged for a transfer of `words` with contiguous
/// runs of `run` words: transactions are 32-word granular.
pub fn coalesced_words(device: &DeviceConfig, words: u64, run: usize) -> u64 {
    let seg = device.shared_banks as u64; // 32-word (128-byte) transactions
    let run = (run.max(1) as u64).min(words.max(1));
    let runs = words / run.max(1);
    let rem = words % run.max(1);
    let padded_run = run.div_ceil(seg) * seg;
    runs * padded_run + if rem > 0 { rem.div_ceil(seg) * seg } else { 0 }
}

/// Total transfer time for `words` words spread over `batches` sub-tile
/// transfers (each batch pays the non-hidden latency and a barrier).
pub fn transfer_time(device: &DeviceConfig, wl: &SimWorkload, words: u64, batches: u64) -> f64 {
    if words == 0 {
        return 0.0;
    }
    let eff = coalesced_words(device, words, wl.contiguous_run);
    eff as f64 * device.word_time + batches as f64 * (device.mem_latency + device.tau_sync)
}

/// Total compute time of one block of `class` (all its sub-tiles):
/// per row and sub-tile, thread rounds × issue groups × per-iteration
/// cost × penalty factors, plus a barrier per active (sub-tile, row).
pub fn block_compute_time(device: &DeviceConfig, wl: &SimWorkload, class: &BlockClass) -> f64 {
    let citer = device.iter_cost(wl.flops_per_iter, wl.shared_accesses_per_iter, wl.rank);
    let diverge = divergence_factor(device, wl.inner_threads);
    let spill = spill_factor(device, wl);
    let warps = wl.threads.max(1).div_ceil(device.warp_size);
    let issue_groups = (warps * device.warp_size).div_ceil(device.n_v) as f64;
    let [n1, n2, n3] = wl.threads_dims;
    let mut rounds_total = 0u64;
    let mut barriers = 0u64;
    for r in 0..class.row_count() {
        if class.s1_widths[r] == 0 {
            continue;
        }
        let r1 = axis_rounds(class.s1_widths[r], n1);
        rounds_total +=
            r1 * axis_rounds_sum(&class.axis2, r, n2) * axis_rounds_sum(&class.axis3, r, n3);
        barriers += axis_active(&class.axis2, r) * axis_active(&class.axis3, r);
    }
    rounds_total as f64 * issue_groups * citer * diverge * spill + barriers as f64 * device.tau_sync
}

/// Lower a block class to its segment sequence.
///
/// The block's exact totals (loads, stores, compute) are distributed over
/// `min(sub-tiles, MAX_CHUNKS)` uniform `load → compute → store` triples,
/// preserving both the totals and the alternation the two-pipe engine
/// interleaves across co-resident blocks.
pub fn lower_block(device: &DeviceConfig, wl: &SimWorkload, class: &BlockClass) -> BlockSegments {
    let n_sub = class.subtiles_per_block();
    let load = transfer_time(device, wl, class.load_words_per_block(), n_sub.max(1));
    let store = transfer_time(device, wl, class.store_words_per_block(), n_sub.max(1));
    let comp = block_compute_time(device, wl, class);
    let chunks = n_sub.clamp(1, MAX_CHUNKS);
    let mut segments = Vec::with_capacity(3 * chunks as usize);
    for _ in 0..chunks {
        let c = chunks as f64;
        if load > 0.0 {
            segments.push(Segment {
                pipe: Pipe::Mem,
                dur: load / c,
            });
        }
        if comp > 0.0 {
            segments.push(Segment {
                pipe: Pipe::Comp,
                dur: comp / c,
            });
        }
        if store > 0.0 {
            segments.push(Segment {
                pipe: Pipe::Mem,
                dur: store / c,
            });
        }
    }
    BlockSegments {
        segments,
        mem_time: load + store,
        comp_time: comp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimWorkload;

    fn wl_with(rows: Vec<[u64; 3]>, threads_dims: [usize; 3], rank: usize) -> SimWorkload {
        let mut wl = SimWorkload::uniform(
            1,
            1,
            1,
            0,
            0,
            rows,
            threads_dims.iter().product(),
            *threads_dims.iter().rfind(|&&t| t > 1).unwrap_or(&32),
        );
        wl.threads_dims = threads_dims;
        wl.rank = rank;
        wl
    }

    fn only_class(wl: &SimWorkload) -> BlockClass {
        wl.kernels[0].classes[0].clone()
    }

    #[test]
    fn divergence_penalizes_partial_warps() {
        let d = DeviceConfig::gtx980();
        assert_eq!(divergence_factor(&d, 32), 1.0);
        assert_eq!(divergence_factor(&d, 64), 1.0);
        assert!((divergence_factor(&d, 48) - 64.0 / 48.0).abs() < 1e-12);
        assert_eq!(divergence_factor(&d, 1), 32.0);
    }

    #[test]
    fn coalescing_pads_short_runs() {
        let d = DeviceConfig::gtx980();
        assert_eq!(coalesced_words(&d, 1024, 32), 1024);
        assert_eq!(coalesced_words(&d, 1024, 8), 4096);
        assert_eq!(coalesced_words(&d, 96, 48), 128);
    }

    #[test]
    fn compute_matches_model_for_aligned_threads() {
        // Aligned launch (n2 = 128 = n_V threads along s2): per-row time
        // must be ⌈s1·s2/n_V⌉·citer + τsync — the paper's Eqn 15 term.
        let d = DeviceConfig::gtx980();
        let wl = wl_with(vec![[4, 128, 1], [7, 128, 1]], [1, 128, 1], 2);
        let class = only_class(&wl);
        let citer = d.iter_cost(wl.flops_per_iter, wl.shared_accesses_per_iter, wl.rank);
        let expect = (4.0 + 7.0) * citer + 2.0 * d.tau_sync;
        let got = block_compute_time(&d, &wl, &class);
        assert!(
            (got - expect).abs() < 1e-15,
            "got {got:e}, expect {expect:e}"
        );
    }

    #[test]
    fn threads_on_wrong_axis_are_wasted() {
        // 384 threads along s2 for a 128-wide s2 extent: 3 issue groups,
        // only one useful → 3× the aligned time.
        let d = DeviceConfig::gtx980();
        let mk = |n2: usize| {
            let mut wl = wl_with(vec![[16, 128, 1]], [1, n2, 1], 2);
            wl.inner_threads = 128.min(n2);
            block_compute_time(&d, &wl, &only_class(&wl))
        };
        let aligned = mk(128);
        let oversub = mk(384);
        assert!(
            (oversub / aligned - 3.0).abs() < 0.05,
            "oversubscribed {oversub:e} vs aligned {aligned:e}"
        );
    }

    #[test]
    fn fewer_threads_than_nv_wastes_lanes() {
        let d = DeviceConfig::gtx980();
        let mk = |n: usize| {
            let wl = wl_with(vec![[1024, 1, 1]], [n, 1, 1], 1);
            block_compute_time(&d, &wl, &only_class(&wl))
        };
        let good = mk(128);
        let bad = mk(64);
        assert!(
            bad > 1.8 * good,
            "64 threads: {bad:e}, 128 threads: {good:e}"
        );
    }

    #[test]
    fn spills_trigger_on_deep_unroll() {
        let d = DeviceConfig::gtx980();
        // 128 threads along s2, 60-wide s1 rows → 60 points per thread →
        // 4·60 + base regs far beyond the 128-register ceiling.
        let wl = wl_with(vec![[60, 128, 1]], [1, 128, 1], 2);
        assert!(
            spill_factor(&d, &wl) > 1.2,
            "factor = {}",
            spill_factor(&d, &wl)
        );
        // Narrow rows: no spills.
        let wl2 = wl_with(vec![[8, 128, 1]], [1, 128, 1], 2);
        assert_eq!(spill_factor(&d, &wl2), 1.0);
    }

    #[test]
    fn extra_threads_do_not_reduce_unroll_on_other_axes() {
        // Adding threads along s2 cannot shrink the per-thread s1 work.
        let d = DeviceConfig::gtx980();
        let narrow = wl_with(vec![[60, 128, 1]], [1, 128, 1], 2);
        let wide = wl_with(vec![[60, 128, 1]], [1, 384, 1], 2);
        assert_eq!(
            spill_factor(&d, &narrow),
            spill_factor(&d, &wide),
            "spill demand must be launch-shape invariant along s2"
        );
    }

    #[test]
    fn lower_block_preserves_totals() {
        let d = DeviceConfig::gtx980();
        let mut wl = SimWorkload::uniform(1, 1, 3, 128, 128, vec![[256, 1, 1]], 128, 32);
        wl.threads_dims = [128, 1, 1];
        let class = only_class(&wl);
        let b = lower_block(&d, &wl, &class);
        let sum: f64 = b.segments.iter().map(|s| s.dur).sum();
        assert!((sum - b.sequential()).abs() < 1e-15);
        assert!(b.mem_time > 0.0 && b.comp_time > 0.0);
        // 3 sub-tiles → 3 chunks of (load, comp, store).
        assert_eq!(b.segments.len(), 9);
    }

    #[test]
    fn lower_block_bounds_chunks() {
        let d = DeviceConfig::gtx980();
        let mut wl = SimWorkload::uniform(1, 1, 100_000, 64, 64, vec![[128, 1, 1]], 128, 32);
        wl.threads_dims = [128, 1, 1];
        let class = only_class(&wl);
        let b = lower_block(&d, &wl, &class);
        assert!(b.segments.len() <= 3 * MAX_CHUNKS as usize);
    }

    #[test]
    fn transfer_time_zero_for_zero_words() {
        let d = DeviceConfig::gtx980();
        let wl = wl_with(vec![[128, 1, 1]], [128, 1, 1], 1);
        assert_eq!(transfer_time(&d, &wl, 0, 1), 0.0);
        assert!(transfer_time(&d, &wl, 1, 1) > 0.0);
    }
}
