//! Device configurations: the hardware parameters of the paper's Table 2
//! plus the timing primitives the simulator is built on.
//!
//! The *structural* parameters (`n_SM`, `n_V`, `M_SM`, `R_SM`, bank and
//! block limits) are taken verbatim from the paper's Table 2. The
//! *timing* primitives are chosen so that the micro-benchmarks of the
//! `microbench` crate — run against this simulator, exactly as the paper
//! ran theirs against hardware — recover values on the scale of the
//! paper's Tables 3 and 4. They are inputs to the machine, not to the
//! model: the model only ever sees what the micro-benchmarks measure.

use serde::{Deserialize, Serialize};

/// Full configuration of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Device name ("GTX 980", "Titan X").
    pub name: String,

    // ---- structural parameters (paper Table 2) ----
    /// Number of streaming multiprocessors (`n_SM`).
    pub n_sm: usize,
    /// Vector lanes (CUDA cores) per SM (`n_V`).
    pub n_v: usize,
    /// Warp size (threads issued in lockstep).
    pub warp_size: usize,
    /// Shared-memory banks per SM.
    pub shared_banks: usize,
    /// Shared memory per SM in 4-byte words (`M_SM`; 96 KB).
    pub shared_mem_words: u64,
    /// Shared-memory limit per thread block in words (48 KB — the
    /// constraint the paper's Section 5.1 exploits to force k = 2).
    pub shared_per_block_words: u64,
    /// 32-bit registers per SM (`R_SM`).
    pub regs_per_sm: u64,
    /// Maximum architectural registers per thread.
    pub max_regs_per_thread: u32,
    /// The compiler's register-allocation ceiling per thread: demand of
    /// the unrolled body beyond this spills to local memory (nvcc caps
    /// allocations well below the architectural maximum to preserve
    /// occupancy).
    pub reg_alloc_target: u32,
    /// Maximum resident thread blocks per SM (`MTB_SM`).
    pub max_blocks_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,

    // ---- timing primitives (seconds) ----
    /// Global-memory cost per 4-byte word on one SM's memory pipe: the
    /// SM's *share* of the device bandwidth (device streaming bandwidth
    /// divided by `n_SM`). The micro-benchmark reports the device-level
    /// `L` (this divided by `n_SM`), which is what the paper's Table 3
    /// lists — and what its model optimistically charges *per tile*,
    /// ignoring that co-running tiles contend for the same DRAM.
    pub word_time: f64,
    /// Fixed non-hidden latency per global transfer batch (per sub-tile
    /// load or store). The paper's model has no such term — one of its
    /// deliberate optimisms.
    pub mem_latency: f64,
    /// Cost of one block-level barrier (`τ_sync`).
    pub tau_sync: f64,
    /// Kernel launch + host synchronization cost (`T_sync`).
    pub t_launch: f64,
    /// Issue+execute time of one arithmetic operation per vector slot.
    pub op_time: f64,
    /// Amortized shared-memory access time per operand.
    pub shared_access_time: f64,
    /// Compute slowdown per spilled-register fraction (see
    /// [`crate::cost`]).
    pub spill_coeff: f64,
}

impl DeviceConfig {
    /// The paper's NVIDIA GTX 980 (Maxwell GM204) — Table 2 column 1.
    pub fn gtx980() -> Self {
        DeviceConfig {
            name: "GTX 980".into(),
            n_sm: 16,
            n_v: 128,
            warp_size: 32,
            shared_banks: 32,
            shared_mem_words: 96 * 1024 / 4,
            shared_per_block_words: 48 * 1024 / 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_target: 128,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            // Device streaming bandwidth per Table 3: L = 7.36e-3 s/GB
            // (136 GB/s); each of the 16 SMs owns a 1/16 share.
            word_time: 7.36e-3 * 4.0 / 1e9 * 16.0,
            mem_latency: 2.0e-8,
            tau_sync: 7.96e-10,
            t_launch: 9.24e-7,
            op_time: 1.6e-9,
            shared_access_time: 2.0e-9,
            spill_coeff: 0.8,
        }
    }

    /// The paper's NVIDIA Titan X (Maxwell GM200) — Table 2 column 2.
    pub fn titan_x() -> Self {
        DeviceConfig {
            name: "Titan X".into(),
            n_sm: 24,
            n_v: 128,
            warp_size: 32,
            shared_banks: 32,
            shared_mem_words: 96 * 1024 / 4,
            shared_per_block_words: 48 * 1024 / 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_target: 128,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            // Device streaming bandwidth per Table 3: L = 5.42e-3 s/GB
            // (185 GB/s); each of the 24 SMs owns a 1/24 share.
            word_time: 5.42e-3 * 4.0 / 1e9 * 24.0,
            mem_latency: 1.6e-8,
            tau_sync: 6.74e-10,
            t_launch: 9.00e-7,
            op_time: 1.8e-9,
            shared_access_time: 2.3e-9,
            spill_coeff: 0.8,
        }
    }

    /// Both evaluation platforms, in the paper's order.
    pub fn paper_devices() -> Vec<DeviceConfig> {
        vec![Self::gtx980(), Self::titan_x()]
    }

    /// The names of the built-in device presets, in the paper's order
    /// (the canonical spellings accepted by [`Self::preset`]).
    pub fn preset_names() -> Vec<&'static str> {
        vec!["GTX 980", "Titan X"]
    }

    /// Look up a built-in device preset by name. Matching ignores case,
    /// spaces, and dashes, so `"gtx980"`, `"GTX-980"`, and `"GTX 980"`
    /// all resolve to the same device, and the bare shorthands `"980"`
    /// and `"titan"` are accepted; `None` for unknown names.
    pub fn preset(name: &str) -> Option<DeviceConfig> {
        let canon = |s: &str| {
            s.chars()
                .filter(|c| !c.is_whitespace() && *c != '-' && *c != '_')
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let wanted = match canon(name).as_str() {
            "980" => "gtx980".to_string(),
            "titan" => "titanx".to_string(),
            w => w.to_string(),
        };
        Self::paper_devices()
            .into_iter()
            .find(|d| canon(&d.name) == wanted)
    }

    /// Index-addressing overhead (in arithmetic ops per iteration) of the
    /// generated tile body, by stencil rank. Higher-rank tiles traverse
    /// skewed multi-dimensional shared-memory buffers, which is the main
    /// reason the paper's measured 3D `Citer` values (Table 4) are ~4×
    /// the 2D ones.
    pub fn addressing_ops(&self, rank: usize) -> u64 {
        match rank {
            1 => 2,
            2 => 6,
            _ => 56,
        }
    }

    /// Per-iteration compute cost of a loop body with `flops` arithmetic
    /// operations and `shared_accesses` shared-memory operands, for a
    /// stencil of dimensionality `rank` — the machine-level counterpart
    /// of the paper's `Citer`.
    pub fn iter_cost(&self, flops: u64, shared_accesses: u64, rank: usize) -> f64 {
        (flops + self.addressing_ops(rank)) as f64 * self.op_time
            + shared_accesses as f64 * self.shared_access_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_structural_parameters() {
        let g = DeviceConfig::gtx980();
        let t = DeviceConfig::titan_x();
        assert_eq!(g.n_sm, 16);
        assert_eq!(t.n_sm, 24);
        assert_eq!(g.n_v, 128);
        assert_eq!(t.n_v, 128);
        assert_eq!(g.shared_mem_words * 4, 96 * 1024);
        assert_eq!(g.regs_per_sm, 65536);
        assert_eq!(g.shared_banks, 32);
        assert_eq!(g.max_blocks_per_sm, 32);
    }

    #[test]
    fn word_time_matches_table3_scale() {
        // Device level: 7.36e-3 s/GB → ~2.94e-11 s per word; each SM's
        // pipe runs at a 1/n_SM share.
        let g = DeviceConfig::gtx980();
        assert!((g.word_time / g.n_sm as f64 - 2.944e-11).abs() < 1e-13);
        // Titan X has higher device bandwidth (smaller device-level L).
        let t = DeviceConfig::titan_x();
        assert!(t.word_time / (t.n_sm as f64) < g.word_time / g.n_sm as f64);
    }

    #[test]
    fn iter_cost_scale_matches_table4() {
        // Jacobi2D on GTX 980: paper Citer = 3.39e-8 s; the machine's
        // per-iteration cost must be on the same scale (±50%).
        let g = DeviceConfig::gtx980();
        let c = g.iter_cost(9, 6, 2);
        assert!((1.7e-8..=5.1e-8).contains(&c), "c = {c:e}");
        // 3D bodies are several times costlier (Table 4: ~4×).
        let c3 = g.iter_cost(13, 8, 3);
        assert!(c3 > 2.5 * c, "c3 = {c3:e}, c = {c:e}");
    }

    #[test]
    fn preset_lookup_is_name_insensitive() {
        for alias in ["GTX 980", "gtx980", "GTX-980", "gtx_980"] {
            assert_eq!(
                DeviceConfig::preset(alias).map(|d| d.name),
                Some("GTX 980".to_string()),
                "{alias}"
            );
        }
        assert_eq!(DeviceConfig::preset("titan x").map(|d| d.n_sm), Some(24));
        // Bare CLI shorthands resolve too.
        assert_eq!(
            DeviceConfig::preset("980").map(|d| d.name),
            Some("GTX 980".into())
        );
        assert_eq!(DeviceConfig::preset("Titan").map(|d| d.n_sm), Some(24));
        assert!(DeviceConfig::preset("H100").is_none());
        // Every advertised preset name resolves to itself.
        for name in DeviceConfig::preset_names() {
            assert_eq!(DeviceConfig::preset(name).unwrap().name, name);
        }
    }

    #[test]
    fn iter_cost_monotone_in_flops() {
        let g = DeviceConfig::gtx980();
        assert!(g.iter_cost(25, 10, 2) > g.iter_cost(9, 6, 2));
    }
}
