//! Simulation results: the machine's "measured execution time" plus the
//! breakdown used by the experiment analyses.

use crate::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// The outcome of simulating one workload — the reproduction's
/// counterpart of the paper's measured `T_exec`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end execution time in seconds (all kernels + launch
    /// overheads).
    pub total_time: f64,
    /// Number of kernel launches (`N_w`).
    pub kernel_launches: usize,
    /// Resolved occupancy of the launch.
    pub occupancy: Occupancy,
    /// Aggregate busy time of all memory pipes (s).
    pub mem_busy: f64,
    /// Aggregate busy time of all compute pipes (s).
    pub comp_busy: f64,
    /// Host-side launch overhead included in `total_time` (s).
    pub launch_overhead: f64,
    /// Compute slowdown charged for register spills (1.0 = none).
    pub spill_factor: f64,
    /// Compute slowdown charged for warp divergence (1.0 = none).
    pub divergence_factor: f64,
}

impl SimReport {
    /// Achieved GFLOPS/s given the workload's total floating-point
    /// operations — the metric of the paper's Figure 6.
    pub fn gflops(&self, total_flops: u64) -> f64 {
        total_flops as f64 / self.total_time / 1e9
    }

    /// Whether the run was memory-bound (memory pipes busier than
    /// compute pipes).
    pub fn memory_bound(&self) -> bool {
        self.mem_busy > self.comp_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{Occupancy, OccupancyLimit};

    fn report(total: f64, mem: f64, comp: f64) -> SimReport {
        SimReport {
            total_time: total,
            kernel_launches: 1,
            occupancy: Occupancy {
                k: 1,
                limit: OccupancyLimit::SharedMemory,
                regs_per_thread: 32,
            },
            mem_busy: mem,
            comp_busy: comp,
            launch_overhead: 0.0,
            spill_factor: 1.0,
            divergence_factor: 1.0,
        }
    }

    #[test]
    fn gflops_conversion() {
        let r = report(2.0, 1.0, 1.5);
        assert!((r.gflops(4_000_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_classification() {
        assert!(report(1.0, 0.9, 0.3).memory_bound());
        assert!(!report(1.0, 0.2, 0.8).memory_bound());
    }
}
