//! # gpu-sim
//!
//! A deterministic, discrete-event GPU simulator — the "machine" of this
//! reproduction, substituting for the paper's NVIDIA GTX 980 and Titan X.
//!
//! The paper's analytical model abstracts a GPU into exactly the
//! resources of its Table 1: `n_SM` streaming multiprocessors with `n_V`
//! vector lanes, shared memory `M_SM`, a register file `R_SM`, a global
//! memory with a per-word cost `L`, barrier cost `τ_sync`, and a kernel
//! launch / host-synchronization cost `T_sync`. This simulator
//! implements the *same resource classes at a finer granularity*, plus
//! the effects the paper's model deliberately ignores and names as its
//! limitations (Section 7):
//!
//! * thread-count mismatch (`n_thr` rounds vs. vector width),
//! * partial warps / divergence when the innermost extent is not a
//!   multiple of the warp size,
//! * register pressure of the fully-unrolled tile body, with spills
//!   "only known after nvcc" — estimated and charged here,
//! * uncoalesced global accesses when the contiguous run is short,
//! * ragged boundary tiles and integer remainders in the block/SM
//!   assignment,
//! * imperfect load/compute overlap: each SM has one memory pipe and
//!   one compute pipe; the `k` co-resident blocks of a wave interleave
//!   on them event-by-event, so the paper's idealized
//!   `m' + c + (k−1)·max(m', c)` (Eqn 12) is an *optimistic bound* on
//!   what the engine produces.
//!
//! Because the model's constants (`L`, `τ_sync`, `T_sync`, `Citer`) are
//! *measured from this machine* by the `microbench` crate — the same
//! methodology the paper uses on hardware — the model-vs-machine error
//! profile (large over the whole space, small near the top) is an
//! emergent property, not a fit.
//!
//! Functional correctness of the schedule is established separately and
//! exactly by `hhc_tiling::exec` (bit-for-bit against the reference
//! executor); this crate consumes the same geometry through
//! [`hhc_tiling::TilingPlan`] and concerns itself with time.

pub mod cost;
pub mod device;
pub mod engine;
pub mod occupancy;
pub mod report;
pub mod trace;
pub mod workload;

pub use device::DeviceConfig;
pub use engine::{
    kernel_time, kernel_time_dealing, simulate, simulate_detailed, KernelBreakdown, KernelStats,
};
pub use occupancy::{occupancy, LaunchError, Occupancy, OccupancyLimit};
pub use report::SimReport;
pub use trace::{trace_kernel, KernelTrace, TraceEvent, TracePipe};
pub use workload::SimWorkload;

/// The workspace-wide workload descriptor, concretized with this crate's
/// [`DeviceConfig`]. `stencil-core` defines the generic shape; every
/// crate above the simulator passes this alias around instead of loose
/// `(device, stencil, size, tiles, launch)` tuples. Distinct from
/// [`SimWorkload`], the simulator's lowered input IR.
pub type Workload = stencil_core::Workload<DeviceConfig>;
