//! Small accessors over the vendored serde shim's [`Value`] tree.
//!
//! The shim's `Deserialize` is a marker trait — parsing JSON yields a
//! [`Value`] tree, and mapping that tree onto structs is the caller's
//! job. These helpers keep the query/advice parsers readable and give
//! uniform, field-named error messages.

use serde::Value;

/// Look up `key` in a JSON object's ordered entry list.
pub fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The entry list of a JSON object, or an error naming what it was.
pub fn as_map<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], String> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(format!("{what} must be a JSON object, got {}", kind(other))),
    }
}

/// The elements of a JSON array.
pub fn as_seq<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], String> {
    match v {
        Value::Seq(items) => Ok(items),
        other => Err(format!("{what} must be a JSON array, got {}", kind(other))),
    }
}

/// A JSON string.
pub fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(format!("{what} must be a string, got {}", kind(other))),
    }
}

/// A JSON boolean.
pub fn as_bool(v: &Value, what: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("{what} must be a boolean, got {}", kind(other))),
    }
}

/// A non-negative JSON integer.
pub fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "{what} must be a non-negative integer, got {}",
            kind(other)
        )),
    }
}

/// A (possibly negative) JSON integer.
pub fn as_i64(v: &Value, what: &str) -> Result<i64, String> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) if *u <= i64::MAX as u64 => Ok(*u as i64),
        other => Err(format!("{what} must be an integer, got {}", kind(other))),
    }
}

/// Any JSON number, widened to `f64`.
pub fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::F64(f) => Ok(*f),
        Value::F32(f) => Ok(*f as f64),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        other => Err(format!("{what} must be a number, got {}", kind(other))),
    }
}

/// Short type name for error messages.
pub fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Int(_) | Value::UInt(_) => "an integer",
        Value::F32(_) | Value::F64(_) => "a float",
        Value::Str(_) => "a string",
        Value::Seq(_) => "an array",
        Value::Map(_) => "an object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_accept_the_right_variants() {
        assert_eq!(as_u64(&Value::UInt(7), "x").unwrap(), 7);
        assert_eq!(as_u64(&Value::Int(7), "x").unwrap(), 7);
        assert!(as_u64(&Value::Int(-1), "x").is_err());
        assert_eq!(as_f64(&Value::UInt(2), "x").unwrap(), 2.0);
        assert_eq!(as_f64(&Value::F64(0.5), "x").unwrap(), 0.5);
        assert!(as_str(&Value::Null, "x").unwrap_err().contains("null"));
        let entries = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(get(&entries, "a"), Some(&Value::Bool(true)));
        assert_eq!(get(&entries, "b"), None);
    }
}
