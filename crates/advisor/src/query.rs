//! Advisory queries: what a client asks the service.
//!
//! Queries arrive as one JSON object per line. The minimal form names a
//! device preset, a stencil, and a problem size:
//!
//! ```json
//! {"id": "q1", "device": "GTX 980", "stencil": "Heat2D",
//!  "size": [4096, 4096], "time": 1024}
//! ```
//!
//! Optional fields: `within` (candidate band around the predicted
//! minimum, default 0.10), `top_n` (ranked candidates returned, default
//! 10), `validate` (run the within-band set on the executor, default
//! false), and `timeout_ms` (per-query deadline; when it expires the
//! answer degrades to the model-only ranking). Instead of a preset name,
//! `device` may be an object with a `"preset"` base and per-field
//! overrides of [`DeviceConfig`], and `stencil` may be an inline
//! [`StencilDescriptor`] object (see [`parse_stencil`]) — the zoo path,
//! where a stencil the repo has never seen flows through the same
//! model, optimizer, and executor as the paper's eight.

use crate::jsonv::{as_bool, as_f64, as_i64, as_map, as_seq, as_str, as_u64, get, kind};
use gpu_sim::{DeviceConfig, Workload};
use serde::Value;
use stencil_core::{Footprint, ProblemSize, StencilDescriptor, StencilDim};

/// One parsed, validated advisory query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Client-chosen identifier, echoed verbatim in the answer. Not part
    /// of the cache key.
    pub id: Option<String>,
    /// The fully-resolved (device, stencil, size) workload the model runs
    /// against — a query deserializes directly into a [`Workload`].
    pub workload: Workload,
    /// Candidate band: keep every point within this fraction of the
    /// predicted `T_alg` minimum (the paper's 10%).
    pub within: f64,
    /// How many ranked candidates to return.
    pub top_n: usize,
    /// Whether to execute the within-band set and report the measured
    /// winner.
    pub validate: bool,
    /// Per-query deadline in milliseconds. `Some(0)` forces immediate
    /// degradation — useful for testing the degraded path.
    pub timeout_ms: Option<u64>,
}

impl Query {
    /// Parse one JSON-lines query.
    pub fn parse_line(line: &str) -> Result<Query, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Query::from_value(&value)
    }

    /// Map a parsed JSON value onto a query.
    pub fn from_value(value: &Value) -> Result<Query, String> {
        let entries = as_map(value, "query")?;
        for (k, _) in entries {
            if !matches!(
                k.as_str(),
                "id" | "device"
                    | "stencil"
                    | "size"
                    | "time"
                    | "within"
                    | "top_n"
                    | "validate"
                    | "timeout_ms"
            ) {
                return Err(format!("unknown query field '{k}'"));
            }
        }
        let id = match get(entries, "id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_str(v, "id")?.to_string()),
        };
        let device = parse_device(get(entries, "device").ok_or("missing field 'device'")?)?;
        let stencil = parse_stencil(get(entries, "stencil").ok_or("missing field 'stencil'")?)?;
        let size = parse_size(
            get(entries, "size").ok_or("missing field 'size'")?,
            get(entries, "time").ok_or("missing field 'time'")?,
        )?;
        // The dimensional-consistency check (and the default tile/launch
        // configuration) lives in one place: the Workload constructor.
        let workload = Workload::new(device, stencil, size)?;
        let within = match get(entries, "within") {
            None => 0.10,
            Some(v) => {
                let f = as_f64(v, "within")?;
                if !f.is_finite() || f < 0.0 {
                    return Err(format!("within must be a finite fraction >= 0, got {f}"));
                }
                f
            }
        };
        let top_n = match get(entries, "top_n") {
            None => 10,
            Some(v) => {
                let n = as_u64(v, "top_n")?;
                if n == 0 {
                    return Err("top_n must be >= 1".into());
                }
                n as usize
            }
        };
        let validate = match get(entries, "validate") {
            None => false,
            Some(v) => as_bool(v, "validate")?,
        };
        let timeout_ms = match get(entries, "timeout_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_u64(v, "timeout_ms")?),
        };
        Ok(Query {
            id,
            workload,
            within,
            top_n,
            validate,
            timeout_ms,
        })
    }
}

/// Resolve the `device` field: a preset name, or an object with a
/// `"preset"` base (default GTX 980) plus per-field overrides.
pub fn parse_device(v: &Value) -> Result<DeviceConfig, String> {
    match v {
        Value::Str(name) => preset(name),
        Value::Map(entries) => {
            let mut dev = match get(entries, "preset") {
                None => DeviceConfig::gtx980(),
                Some(p) => preset(as_str(p, "device.preset")?)?,
            };
            for (key, val) in entries {
                if key != "preset" {
                    apply_override(&mut dev, key, val)?;
                }
            }
            Ok(dev)
        }
        other => Err(format!(
            "device must be a preset name or an object, got {}",
            kind(other)
        )),
    }
}

fn preset(name: &str) -> Result<DeviceConfig, String> {
    DeviceConfig::preset(name).ok_or_else(|| {
        format!(
            "unknown device preset '{name}' (known: {})",
            DeviceConfig::preset_names().join(", ")
        )
    })
}

/// Set one [`DeviceConfig`] field by its JSON name.
fn apply_override(dev: &mut DeviceConfig, key: &str, v: &Value) -> Result<(), String> {
    let u = |v: &Value| as_u64(v, key);
    let f = |v: &Value| {
        let x = as_f64(v, key)?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!("{key} must be a finite number >= 0, got {x}"));
        }
        Ok(x)
    };
    match key {
        "name" => dev.name = as_str(v, key)?.to_string(),
        "n_sm" => dev.n_sm = u(v)? as usize,
        "n_v" => dev.n_v = u(v)? as usize,
        "warp_size" => dev.warp_size = u(v)? as usize,
        "shared_banks" => dev.shared_banks = u(v)? as usize,
        "shared_mem_words" => dev.shared_mem_words = u(v)?,
        "shared_per_block_words" => dev.shared_per_block_words = u(v)?,
        "regs_per_sm" => dev.regs_per_sm = u(v)?,
        "max_regs_per_thread" => dev.max_regs_per_thread = u(v)? as u32,
        "reg_alloc_target" => dev.reg_alloc_target = u(v)? as u32,
        "max_blocks_per_sm" => dev.max_blocks_per_sm = u(v)? as usize,
        "max_threads_per_sm" => dev.max_threads_per_sm = u(v)? as usize,
        "max_threads_per_block" => dev.max_threads_per_block = u(v)? as usize,
        "word_time" => dev.word_time = f(v)?,
        "mem_latency" => dev.mem_latency = f(v)?,
        "tau_sync" => dev.tau_sync = f(v)?,
        "t_launch" => dev.t_launch = f(v)?,
        "op_time" => dev.op_time = f(v)?,
        "shared_access_time" => dev.shared_access_time = f(v)?,
        "spill_coeff" => dev.spill_coeff = f(v)?,
        other => return Err(format!("unknown device field '{other}'")),
    }
    Ok(())
}

/// Resolve the `stencil` field: a named descriptor (the eight paper
/// presets plus the zoo, case-insensitive), or an inline descriptor
/// object:
///
/// ```json
/// {"name": "mystencil", "dim": 2, "radius": 2, "footprint": "star",
///  "coefficients": [0.8, 0.05, 0.0125, 0.05, 0.0125, 0.05, 0.0125, 0.05, 0.0125],
///  "constant": 0.0, "extra_flops": 0}
/// ```
///
/// `footprint` is `"star"` (default) or `"box"`; a custom footprint
/// instead supplies `"offsets": [[dx, …], …]` — one offset per
/// coefficient, in coefficient order. Validation (rank/radius bounds,
/// coefficient-count vs footprint, duplicate offsets) happens in
/// [`StencilDescriptor::new`], so inline descriptors are held to the
/// same rules as built-ins.
pub fn parse_stencil(v: &Value) -> Result<StencilDescriptor, String> {
    match v {
        Value::Str(name) => StencilDescriptor::from_name(name).ok_or_else(|| {
            format!(
                "unknown stencil '{name}' (known: {}); or pass an inline descriptor object",
                StencilDescriptor::named()
                    .iter()
                    .map(|d| d.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }),
        Value::Map(entries) => parse_inline_stencil(entries),
        other => Err(format!(
            "stencil must be a name or a descriptor object, got {}",
            kind(other)
        )),
    }
}

fn parse_inline_stencil(entries: &[(String, Value)]) -> Result<StencilDescriptor, String> {
    for (k, _) in entries {
        if !matches!(
            k.as_str(),
            "name"
                | "dim"
                | "radius"
                | "footprint"
                | "offsets"
                | "coefficients"
                | "constant"
                | "extra_flops"
        ) {
            return Err(format!("unknown stencil field '{k}'"));
        }
    }
    let name = as_str(
        get(entries, "name").ok_or("missing stencil field 'name'")?,
        "stencil.name",
    )?
    .to_string();
    let dim = match as_u64(
        get(entries, "dim").ok_or("missing stencil field 'dim'")?,
        "stencil.dim",
    )? {
        1 => StencilDim::D1,
        2 => StencilDim::D2,
        3 => StencilDim::D3,
        d => return Err(format!("stencil.dim must be 1, 2, or 3, got {d}")),
    };
    let radius = match get(entries, "radius") {
        None => 1,
        Some(v) => as_i64(v, "stencil.radius")?,
    };
    let footprint = match (get(entries, "footprint"), get(entries, "offsets")) {
        (Some(_), Some(_)) => {
            return Err("stencil cannot have both 'footprint' and 'offsets'".into());
        }
        (None, None) => Footprint::Star,
        (Some(f), None) => match as_str(f, "stencil.footprint")? {
            "star" => Footprint::Star,
            "box" => Footprint::Box,
            other => {
                return Err(format!(
                    "stencil.footprint must be 'star' or 'box' (use 'offsets' for a custom \
                     footprint), got '{other}'"
                ));
            }
        },
        (None, Some(offs)) => {
            let rank = dim.rank();
            let mut out = Vec::new();
            for (i, o) in as_seq(offs, "stencil.offsets")?.iter().enumerate() {
                let coords = as_seq(o, "stencil offset")?;
                if coords.len() != rank {
                    return Err(format!(
                        "stencil offset #{i} has {} coordinates; a {rank}D stencil needs {rank}",
                        coords.len()
                    ));
                }
                let mut point = [0i64; 3];
                for (slot, c) in point.iter_mut().zip(coords) {
                    *slot = as_i64(c, "stencil offset coordinate")?;
                }
                out.push(point);
            }
            Footprint::Custom(out)
        }
    };
    let coeffs_v = get(entries, "coefficients").ok_or("missing stencil field 'coefficients'")?;
    let mut coefficients = Vec::new();
    for c in as_seq(coeffs_v, "stencil.coefficients")? {
        let x = as_f64(c, "stencil coefficient")?;
        if !x.is_finite() {
            return Err("stencil coefficients must be finite".into());
        }
        coefficients.push(x as f32);
    }
    let constant = match get(entries, "constant") {
        None => 0.0,
        Some(v) => {
            let x = as_f64(v, "stencil.constant")?;
            if !x.is_finite() {
                return Err("stencil.constant must be finite".into());
            }
            x as f32
        }
    };
    let extra_flops = match get(entries, "extra_flops") {
        None => 0,
        Some(v) => {
            let n = as_u64(v, "stencil.extra_flops")?;
            u32::try_from(n).map_err(|_| format!("stencil.extra_flops too large: {n}"))?
        }
    };
    StencilDescriptor::new(
        name,
        dim,
        radius,
        footprint,
        coefficients,
        constant,
        extra_flops,
    )
    .map_err(|e| format!("invalid stencil descriptor: {e}"))
}

fn parse_size(size: &Value, time: &Value) -> Result<ProblemSize, String> {
    let items = as_seq(size, "size")?;
    let mut s = Vec::with_capacity(items.len());
    for v in items {
        let e = as_u64(v, "size element")?;
        if e == 0 {
            return Err("size extents must be >= 1".into());
        }
        s.push(e as usize);
    }
    let t = as_u64(time, "time")? as usize;
    if t == 0 {
        return Err("time must be >= 1".into());
    }
    ProblemSize::from_extents(&s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query_gets_documented_defaults() {
        let q = Query::parse_line(
            r#"{"device": "gtx980", "stencil": "heat2d", "size": [512, 512], "time": 64}"#,
        )
        .unwrap();
        assert_eq!(q.id, None);
        assert_eq!(q.workload.device.name, "GTX 980");
        assert_eq!(
            q.workload.stencil.preset_kind(),
            Some(stencil_core::StencilKind::Heat2D)
        );
        assert_eq!(q.workload.size, ProblemSize::new_2d(512, 512, 64));
        assert!(q.workload.validate().is_ok());
        assert_eq!(q.within, 0.10);
        assert_eq!(q.top_n, 10);
        assert!(!q.validate);
        assert_eq!(q.timeout_ms, None);
    }

    #[test]
    fn custom_device_overrides_apply_over_the_preset() {
        let q = Query::parse_line(
            r#"{"device": {"preset": "Titan X", "n_sm": 20, "word_time": 1e-10},
                "stencil": "Jacobi2D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap();
        assert_eq!(q.workload.device.name, "Titan X");
        assert_eq!(q.workload.device.n_sm, 20);
        assert_eq!(q.workload.device.word_time, 1e-10);
        // Untouched fields keep the preset's values.
        assert_eq!(q.workload.device.n_v, DeviceConfig::titan_x().n_v);
    }

    #[test]
    fn dimension_mismatch_and_typos_are_rejected() {
        let err = Query::parse_line(
            r#"{"device": "GTX 980", "stencil": "Heat3D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap_err();
        assert!(err.contains("3-dimensional"), "{err}");
        let err = Query::parse_line(
            r#"{"device": "GTX 980", "stencil": "Heat2D", "size": [256, 256], "time": 32,
                "topn": 5}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown query field 'topn'"), "{err}");
        let err = Query::parse_line(
            r#"{"device": "Voodoo2", "stencil": "Heat2D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown device preset"), "{err}");
    }

    #[test]
    fn zoo_stencils_resolve_by_name() {
        let q = Query::parse_line(
            r#"{"device": "gtx980", "stencil": "lap4_2d", "size": [512, 512], "time": 64}"#,
        )
        .unwrap();
        assert_eq!(q.workload.stencil, StencilDescriptor::lap4_2d());
        assert_eq!(q.workload.stencil.preset_kind(), None);
    }

    #[test]
    fn inline_descriptor_parses_and_matches_builtin() {
        // An inline spelling of the built-in Lap4_2D must collapse onto
        // the same fingerprint (one micro-benchmark, one cache segment).
        // `{:?}` on f32 prints the shortest round-tripping literal, so
        // JSON's f64 reading casts back to the identical bits.
        let zoo = StencilDescriptor::lap4_2d();
        let coeffs = zoo
            .coefficients
            .iter()
            .map(|c| format!("{c:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let line = format!(
            r#"{{"device": "gtx980",
                "stencil": {{"name": "Lap4_2D", "dim": 2, "radius": 2, "footprint": "star",
                            "coefficients": [{coeffs}]}},
                "size": [512, 512], "time": 64}}"#
        );
        let q = Query::parse_line(&line).unwrap();
        assert_eq!(q.workload.stencil.dim, StencilDim::D2);
        assert_eq!(q.workload.stencil.radius, 2);
        assert_eq!(q.workload.stencil.fingerprint(), zoo.fingerprint());
    }

    #[test]
    fn inline_descriptor_with_custom_offsets() {
        let q = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "slash3", "dim": 2, "radius": 1,
                            "offsets": [[0, 0], [-1, -1], [1, 1]],
                            "coefficients": [0.5, 0.25, 0.25]},
                "size": [256, 256], "time": 16}"#,
        )
        .unwrap();
        assert_eq!(q.workload.stencil.coefficients.len(), 3);
        assert!(q.workload.validate().is_ok());
    }

    #[test]
    fn malformed_inline_descriptors_are_rejected() {
        // Coefficient count must match the footprint.
        let err = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "bad", "dim": 2, "radius": 2,
                            "coefficients": [1.0, 2.0]},
                "size": [512, 512], "time": 64}"#,
        )
        .unwrap_err();
        assert!(err.contains("invalid stencil descriptor"), "{err}");
        // Radius outside the supported range.
        let err = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "bad", "dim": 1, "radius": 99,
                            "coefficients": [1.0]},
                "size": [512], "time": 64}"#,
        )
        .unwrap_err();
        assert!(err.contains("radius"), "{err}");
        // Rank mismatch between descriptor and problem size.
        let err = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "ok1d", "dim": 1, "radius": 1,
                            "coefficients": [0.4, 0.3, 0.3]},
                "size": [512, 512], "time": 64}"#,
        )
        .unwrap_err();
        assert!(!err.is_empty());
        // Unknown fields and bad footprints name themselves.
        let err = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "bad", "dim": 2, "radius": 1, "shape": "star",
                            "coefficients": [1.0]},
                "size": [512, 512], "time": 64}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown stencil field 'shape'"), "{err}");
        let err = Query::parse_line(
            r#"{"device": "gtx980",
                "stencil": {"name": "bad", "dim": 2, "footprint": "hexagon",
                            "coefficients": [1.0]},
                "size": [512, 512], "time": 64}"#,
        )
        .unwrap_err();
        assert!(err.contains("'star' or 'box'"), "{err}");
    }
}
