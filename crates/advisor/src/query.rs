//! Advisory queries: what a client asks the service.
//!
//! Queries arrive as one JSON object per line. The minimal form names a
//! device preset, a stencil, and a problem size:
//!
//! ```json
//! {"id": "q1", "device": "GTX 980", "stencil": "Heat2D",
//!  "size": [4096, 4096], "time": 1024}
//! ```
//!
//! Optional fields: `within` (candidate band around the predicted
//! minimum, default 0.10), `top_n` (ranked candidates returned, default
//! 10), `validate` (run the within-band set on the executor, default
//! false), and `timeout_ms` (per-query deadline; when it expires the
//! answer degrades to the model-only ranking). Instead of a preset name,
//! `device` may be an object with a `"preset"` base and per-field
//! overrides of [`DeviceConfig`].

use crate::jsonv::{as_bool, as_f64, as_map, as_seq, as_str, as_u64, get, kind};
use gpu_sim::{DeviceConfig, Workload};
use serde::Value;
use stencil_core::{ProblemSize, StencilKind};

/// One parsed, validated advisory query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Client-chosen identifier, echoed verbatim in the answer. Not part
    /// of the cache key.
    pub id: Option<String>,
    /// The fully-resolved (device, stencil, size) workload the model runs
    /// against — a query deserializes directly into a [`Workload`].
    pub workload: Workload,
    /// Candidate band: keep every point within this fraction of the
    /// predicted `T_alg` minimum (the paper's 10%).
    pub within: f64,
    /// How many ranked candidates to return.
    pub top_n: usize,
    /// Whether to execute the within-band set and report the measured
    /// winner.
    pub validate: bool,
    /// Per-query deadline in milliseconds. `Some(0)` forces immediate
    /// degradation — useful for testing the degraded path.
    pub timeout_ms: Option<u64>,
}

impl Query {
    /// Parse one JSON-lines query.
    pub fn parse_line(line: &str) -> Result<Query, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Query::from_value(&value)
    }

    /// Map a parsed JSON value onto a query.
    pub fn from_value(value: &Value) -> Result<Query, String> {
        let entries = as_map(value, "query")?;
        for (k, _) in entries {
            if !matches!(
                k.as_str(),
                "id" | "device"
                    | "stencil"
                    | "size"
                    | "time"
                    | "within"
                    | "top_n"
                    | "validate"
                    | "timeout_ms"
            ) {
                return Err(format!("unknown query field '{k}'"));
            }
        }
        let id = match get(entries, "id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_str(v, "id")?.to_string()),
        };
        let device = parse_device(get(entries, "device").ok_or("missing field 'device'")?)?;
        let stencil = parse_stencil(as_str(
            get(entries, "stencil").ok_or("missing field 'stencil'")?,
            "stencil",
        )?)?;
        let size = parse_size(
            get(entries, "size").ok_or("missing field 'size'")?,
            get(entries, "time").ok_or("missing field 'time'")?,
        )?;
        // The dimensional-consistency check (and the default tile/launch
        // configuration) lives in one place: the Workload constructor.
        let workload = Workload::new(device, stencil, size)?;
        let within = match get(entries, "within") {
            None => 0.10,
            Some(v) => {
                let f = as_f64(v, "within")?;
                if !f.is_finite() || f < 0.0 {
                    return Err(format!("within must be a finite fraction >= 0, got {f}"));
                }
                f
            }
        };
        let top_n = match get(entries, "top_n") {
            None => 10,
            Some(v) => {
                let n = as_u64(v, "top_n")?;
                if n == 0 {
                    return Err("top_n must be >= 1".into());
                }
                n as usize
            }
        };
        let validate = match get(entries, "validate") {
            None => false,
            Some(v) => as_bool(v, "validate")?,
        };
        let timeout_ms = match get(entries, "timeout_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_u64(v, "timeout_ms")?),
        };
        Ok(Query {
            id,
            workload,
            within,
            top_n,
            validate,
            timeout_ms,
        })
    }
}

/// Resolve the `device` field: a preset name, or an object with a
/// `"preset"` base (default GTX 980) plus per-field overrides.
pub fn parse_device(v: &Value) -> Result<DeviceConfig, String> {
    match v {
        Value::Str(name) => preset(name),
        Value::Map(entries) => {
            let mut dev = match get(entries, "preset") {
                None => DeviceConfig::gtx980(),
                Some(p) => preset(as_str(p, "device.preset")?)?,
            };
            for (key, val) in entries {
                if key != "preset" {
                    apply_override(&mut dev, key, val)?;
                }
            }
            Ok(dev)
        }
        other => Err(format!(
            "device must be a preset name or an object, got {}",
            kind(other)
        )),
    }
}

fn preset(name: &str) -> Result<DeviceConfig, String> {
    DeviceConfig::preset(name).ok_or_else(|| {
        format!(
            "unknown device preset '{name}' (known: {})",
            DeviceConfig::preset_names().join(", ")
        )
    })
}

/// Set one [`DeviceConfig`] field by its JSON name.
fn apply_override(dev: &mut DeviceConfig, key: &str, v: &Value) -> Result<(), String> {
    let u = |v: &Value| as_u64(v, key);
    let f = |v: &Value| {
        let x = as_f64(v, key)?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!("{key} must be a finite number >= 0, got {x}"));
        }
        Ok(x)
    };
    match key {
        "name" => dev.name = as_str(v, key)?.to_string(),
        "n_sm" => dev.n_sm = u(v)? as usize,
        "n_v" => dev.n_v = u(v)? as usize,
        "warp_size" => dev.warp_size = u(v)? as usize,
        "shared_banks" => dev.shared_banks = u(v)? as usize,
        "shared_mem_words" => dev.shared_mem_words = u(v)?,
        "shared_per_block_words" => dev.shared_per_block_words = u(v)?,
        "regs_per_sm" => dev.regs_per_sm = u(v)?,
        "max_regs_per_thread" => dev.max_regs_per_thread = u(v)? as u32,
        "reg_alloc_target" => dev.reg_alloc_target = u(v)? as u32,
        "max_blocks_per_sm" => dev.max_blocks_per_sm = u(v)? as usize,
        "max_threads_per_sm" => dev.max_threads_per_sm = u(v)? as usize,
        "max_threads_per_block" => dev.max_threads_per_block = u(v)? as usize,
        "word_time" => dev.word_time = f(v)?,
        "mem_latency" => dev.mem_latency = f(v)?,
        "tau_sync" => dev.tau_sync = f(v)?,
        "t_launch" => dev.t_launch = f(v)?,
        "op_time" => dev.op_time = f(v)?,
        "shared_access_time" => dev.shared_access_time = f(v)?,
        "spill_coeff" => dev.spill_coeff = f(v)?,
        other => return Err(format!("unknown device field '{other}'")),
    }
    Ok(())
}

fn parse_stencil(name: &str) -> Result<StencilKind, String> {
    let wanted = name.to_ascii_lowercase();
    StencilKind::ALL
        .into_iter()
        .find(|k| k.name().to_ascii_lowercase() == wanted)
        .ok_or_else(|| {
            format!(
                "unknown stencil '{name}' (known: {})",
                StencilKind::ALL.map(|k| k.name()).join(", ")
            )
        })
}

fn parse_size(size: &Value, time: &Value) -> Result<ProblemSize, String> {
    let items = as_seq(size, "size")?;
    let mut s = Vec::with_capacity(items.len());
    for v in items {
        let e = as_u64(v, "size element")?;
        if e == 0 {
            return Err("size extents must be >= 1".into());
        }
        s.push(e as usize);
    }
    let t = as_u64(time, "time")? as usize;
    if t == 0 {
        return Err("time must be >= 1".into());
    }
    ProblemSize::from_extents(&s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query_gets_documented_defaults() {
        let q = Query::parse_line(
            r#"{"device": "gtx980", "stencil": "heat2d", "size": [512, 512], "time": 64}"#,
        )
        .unwrap();
        assert_eq!(q.id, None);
        assert_eq!(q.workload.device.name, "GTX 980");
        assert_eq!(q.workload.stencil, StencilKind::Heat2D);
        assert_eq!(q.workload.size, ProblemSize::new_2d(512, 512, 64));
        assert!(q.workload.validate().is_ok());
        assert_eq!(q.within, 0.10);
        assert_eq!(q.top_n, 10);
        assert!(!q.validate);
        assert_eq!(q.timeout_ms, None);
    }

    #[test]
    fn custom_device_overrides_apply_over_the_preset() {
        let q = Query::parse_line(
            r#"{"device": {"preset": "Titan X", "n_sm": 20, "word_time": 1e-10},
                "stencil": "Jacobi2D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap();
        assert_eq!(q.workload.device.name, "Titan X");
        assert_eq!(q.workload.device.n_sm, 20);
        assert_eq!(q.workload.device.word_time, 1e-10);
        // Untouched fields keep the preset's values.
        assert_eq!(q.workload.device.n_v, DeviceConfig::titan_x().n_v);
    }

    #[test]
    fn dimension_mismatch_and_typos_are_rejected() {
        let err = Query::parse_line(
            r#"{"device": "GTX 980", "stencil": "Heat3D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap_err();
        assert!(err.contains("3-dimensional"), "{err}");
        let err = Query::parse_line(
            r#"{"device": "GTX 980", "stencil": "Heat2D", "size": [256, 256], "time": 32,
                "topn": 5}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown query field 'topn'"), "{err}");
        let err = Query::parse_line(
            r#"{"device": "Voodoo2", "stencil": "Heat2D", "size": [256, 256], "time": 32}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown device preset"), "{err}");
    }
}
