//! # advisor
//!
//! A tile-size advisory service over the paper's selection pipeline
//! (Section 6.1): given a device, a stencil, a problem size, and a time
//! horizon, answer with the ranked within-band candidate list and the
//! predicted `T_alg` of each — optionally validated by running the
//! candidates on the tiled executor, exactly as the paper measures its
//! "within 10 % of `T_alg min`" set.
//!
//! The engine is built for repeated, overlapping queries:
//!
//! * **Batched evaluation with dedup** — [`Advisor::advise_batch`]
//!   canonicalizes every query and computes each distinct one once (the
//!   Eqn-31 model sweep itself is sharded across the rayon pool);
//!   duplicates are answered from the batch, counted on
//!   `advisor.batch_dedup`.
//! * **Two-tier cache** — an in-memory LRU in front of an optional
//!   on-disk JSON cache with git-revision invalidation (see
//!   [`cache::DiskCache`]). Cached answers are byte-identical to cold
//!   ones; provenance lives only in the `advisor.cache_hits_mem` /
//!   `advisor.cache_hits_disk` counters.
//! * **Graceful degradation** — a per-query `timeout_ms` bounds the
//!   expensive validation phase. When the deadline expires the answer
//!   falls back to the model-only ranking, flagged `degraded: true`
//!   (and is *not* cached, so a later unhurried query recomputes).
//!
//! The `experiments serve` subcommand exposes the same engine over
//! JSON-lines stdin/stdout; see [`serve`]. `experiments serve --listen`
//! runs the concurrent socket front end ([`server`]) on the same
//! engine, and `experiments precompute` sweeps an ahead-of-time
//! [`store::AnswerStore`] so steady-state serving is pure lookup
//! (`advisor.store_hits`) with zero model evaluations
//! (`advisor.model_evals`).

pub mod advice;
pub mod cache;
pub mod jsonv;
pub mod query;
pub mod serve;
pub mod server;
pub mod shard;
pub mod store;

pub use advice::{Advice, Candidate, MeasuredBest, SkippedOut, ValidationReport};
pub use query::Query;
pub use serve::{serve_lines, ServeStats};
pub use server::{Server, ServerConfig};
pub use shard::ShardedCache;
pub use store::{grid_queries, AnswerStore};

use cache::DiskCache;
use calib::CalibrationStore;
use gpu_sim::DeviceConfig;
use hhc_tiling::LaunchConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stencil_core::{init, StencilDescriptor};
use tile_opt::{
    feasible_space, model_sweep_spec, run_candidates_until, simulate_point, within_fraction,
    DataPoint, SkipReason, SpaceConfig,
};
use time_model::{DimSpec, MeasuredParams, ModelParams};

/// Tuning knobs of one advisor instance. Everything that can change an
/// answer (micro-benchmark sampling, the enumerated space) is folded
/// into the canonical cache key.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Capacity of the in-memory LRU tier.
    pub mem_capacity: usize,
    /// Directory of the on-disk tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
    /// Samples for the `Citer` micro-benchmark (the experiments crate
    /// uses 70 at paper scale; the advisor defaults lighter because it
    /// is interactive).
    pub citer_samples: usize,
    /// Seed of the micro-benchmark sampler and the validation grid.
    pub seed: u64,
    /// The enumerated feasible space of Eqn 31.
    pub space: SpaceConfig,
    /// Where `validate: true` traffic appends its predicted-vs-measured
    /// pairs; `None` disables accuracy telemetry. Not part of the cache
    /// key (telemetry never changes an answer).
    pub accuracy: Option<Arc<obs::AccuracyLog>>,
    /// Rolling-RMSE drift band for the accuracy log (the paper's §5.3
    /// within-10% claim by default).
    pub accuracy_band: f64,
    /// An ahead-of-time answer store consulted before every cache tier
    /// (see [`store::AnswerStore`]); `None` disables it. Like the disk
    /// tier, the store only ever changes *where* an answer comes from,
    /// never its bytes — provenance lives on `advisor.store_hits`.
    pub store: Option<Arc<AnswerStore>>,
    /// A calibration store whose per-segment corrections refine the
    /// model before ranking (see the `calib` crate); `None` serves the
    /// uncorrected model bit-identically. The store's revision is part
    /// of the canonical key, so answers minted under a different
    /// calibration are structurally unreachable from the caches.
    pub calib: Option<Arc<CalibrationStore>>,
    /// Fault-injection factor on the measured `Citer` (1.0 = off): the
    /// advisor's model sees `citer × citer_scale` while the validation
    /// executor keeps the truth, simulating a miscalibrated
    /// micro-benchmark. Exists so tests and the CI calibration smoke
    /// can create a known model bias for the closed loop to remove
    /// (`HHC_CITER_SCALE` in `experiments serve` sets it).
    pub citer_scale: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            mem_capacity: 256,
            disk_dir: None,
            citer_samples: 16,
            seed: 0x5EED,
            space: SpaceConfig::default(),
            accuracy: None,
            accuracy_band: 0.10,
            store: None,
            calib: None,
            citer_scale: 1.0,
        }
    }
}

/// The advisory engine. Cheap to share behind a reference; all interior
/// state (caches, measured-parameter memo) is lock-protected.
pub struct Advisor {
    cfg: AdvisorConfig,
    mem: ShardedCache,
    disk: Option<DiskCache>,
    /// The loaded calibration store's revision, computed once — the
    /// store is immutable while serving, so this is stable for the
    /// process lifetime and safe inside cache keys.
    calib_rev: Option<String>,
    /// Measured `(L, τ_sync, T_sync, Citer)` per (device fingerprint,
    /// stencil fingerprint): the micro-benchmarks are deterministic for
    /// a fixed config, so one measurement serves every query against
    /// the pair. Descriptor fingerprints collapse equivalent spellings
    /// of the same stencil onto one measurement.
    measured: Mutex<HashMap<(u64, u64), MeasuredParams>>,
}

impl Advisor {
    pub fn new(cfg: AdvisorConfig) -> Self {
        Advisor {
            mem: ShardedCache::new(cfg.mem_capacity),
            disk: cfg.disk_dir.as_ref().map(DiskCache::new),
            calib_rev: cfg.calib.as_ref().map(|c| c.revision()),
            measured: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    pub fn with_defaults() -> Self {
        Self::new(AdvisorConfig::default())
    }

    /// The canonical cache key of a query: every answer-determining
    /// input, none of the presentation-only ones (`id`, `timeout_ms`).
    /// `cal=` pins the calibration revision (`none` when no store is
    /// loaded), so disk-cache entries and answer stores minted under a
    /// different calibration can never be served: their keys simply
    /// don't exist under the current one. `fi=` appears only when the
    /// `citer_scale` fault injection is armed — a biased model must not
    /// share answers with an unbiased one.
    pub fn canonical_key(&self, q: &Query) -> String {
        let w = &q.workload;
        let dev = serde_json::to_string(&w.device).expect("device serializes");
        let mut key = format!(
            "v2|dev={:016x}|st={}|s={}x{}x{}|t={}|within={:016x}|top={}|val={}|mb={}x{}|space={:016x}|cal={}",
            cache::fnv64(dev.as_bytes()),
            w.stencil.key_token(),
            w.size.space[0],
            w.size.space[1],
            w.size.space[2],
            w.size.time,
            q.within.to_bits(),
            q.top_n,
            q.validate,
            self.cfg.citer_samples,
            self.cfg.seed,
            cache::fnv64(
                serde_json::to_string(&self.cfg.space)
                    .expect("space serializes")
                    .as_bytes()
            ),
            self.calib_rev.as_deref().unwrap_or("none"),
        );
        if self.cfg.citer_scale != 1.0 {
            key.push_str(&format!("|fi={:016x}", self.cfg.citer_scale.to_bits()));
        }
        key
    }

    /// The revision of the loaded calibration store, if any.
    pub fn calib_rev(&self) -> Option<&str> {
        self.calib_rev.as_deref()
    }

    /// Answer one query, consulting the answer store and the cache
    /// tiers first. Every exit path records its wall time on a
    /// per-outcome latency histogram
    /// (`advisor.latency_ms.{store,cache_mem,cache_disk,ok,degraded}`)
    /// so p99 under deadline pressure is measurable, not just hit
    /// counts. The query's own `timeout_ms` anchors the deadline here,
    /// at call time; a server that parsed the query earlier passes the
    /// arrival-anchored deadline through [`advise_at`](Self::advise_at)
    /// instead, so queue wait counts against the budget.
    pub fn advise(&self, q: &Query) -> Advice {
        let deadline = q
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        self.advise_at(q, deadline)
    }

    /// [`advise`](Self::advise) with an explicit absolute deadline.
    pub fn advise_at(&self, q: &Query, deadline: Option<Instant>) -> Advice {
        let _span = obs::span("advisor.query", "advisor");
        let t0 = Instant::now();
        let latency = |outcome: &str| {
            obs::histogram(
                &format!("advisor.latency_ms.{outcome}"),
                t0.elapsed().as_secs_f64() * 1e3,
            );
        };
        if obs::active() {
            obs::counter("advisor.queries", 1);
        }
        let key = self.canonical_key(q);
        if let Some(store) = &self.cfg.store {
            if let Some(mut hit) = store.get(&key) {
                if obs::active() {
                    obs::counter("advisor.store_hits", 1);
                }
                hit.id = q.id.clone();
                latency("store");
                return hit;
            }
        }
        if let Some(mut hit) = self.mem.get(&key) {
            if obs::active() {
                obs::counter("advisor.cache_hits_mem", 1);
            }
            hit.id = q.id.clone();
            latency("cache_mem");
            return hit;
        }
        if let Some(disk) = &self.disk {
            if let Some(mut hit) = disk.load(&key) {
                if obs::active() {
                    obs::counter("advisor.cache_hits_disk", 1);
                }
                self.mem.put(key, hit.clone());
                hit.id = q.id.clone();
                latency("cache_disk");
                return hit;
            }
        }
        let answer = self.compute(q, deadline);
        if answer.degraded {
            if obs::active() {
                obs::counter("advisor.degraded", 1);
            }
            latency("degraded");
        } else {
            self.mem.put(key.clone(), answer.clone());
            if let Some(disk) = &self.disk {
                disk.store(&key, &answer, self.cfg.seed);
            }
            latency("ok");
        }
        answer
    }

    /// Answer a batch of queries, in input order. Queries that
    /// canonicalize to the same key are computed once; the duplicates
    /// are answered from the batch (with their own `id` echoed) and
    /// counted on `advisor.batch_dedup`.
    pub fn advise_batch(&self, queries: &[Query]) -> Vec<Advice> {
        let mut first: HashMap<String, usize> = HashMap::new();
        let mut answers: Vec<Advice> = Vec::with_capacity(queries.len());
        let mut dedup = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let key = self.canonical_key(q);
            match first.get(&key) {
                Some(&j) => {
                    dedup += 1;
                    let mut a = answers[j].clone();
                    a.id = q.id.clone();
                    answers.push(a);
                }
                None => {
                    first.insert(key, i);
                    answers.push(self.advise(q));
                }
            }
        }
        if dedup > 0 && obs::active() {
            obs::counter("advisor.batch_dedup", dedup);
        }
        answers
    }

    /// Compute an answer from scratch: measured parameters → feasible
    /// space → parallel model sweep → within-band ranking → optional
    /// validation run, all under the caller's deadline. Every call is
    /// counted on `advisor.model_evals` — the "zero model evaluations
    /// in steady state" claim is `advisor.queries` growing while this
    /// counter stands still.
    fn compute(&self, q: &Query, deadline: Option<Instant>) -> Advice {
        let w = &q.workload;
        if obs::active() {
            obs::counter("advisor.model_evals", 1);
        }
        let params = self.model_params(&w.device, &w.stencil);
        let tiles = feasible_space(w, &self.cfg.space);
        let rank = w.rank();
        let dspec = DimSpec::for_stencil(&w.stencil);
        // Calibration: a correction fires only when the store has
        // enough evidence for this exact (device, stencil, dim)
        // segment; otherwise the sweep below is the plain model,
        // bit-identical to a calibration-free advisor.
        let corr = self
            .cfg
            .calib
            .as_ref()
            .and_then(|c| c.correction(&w.device.name, &w.stencil.name, rank as u32));
        if corr.is_some() && obs::active() {
            obs::counter("calib.corrections_applied", 1);
        }
        let sweep = model_sweep_spec(dspec, &params, &w.size, &tiles, corr.as_ref());
        let within = within_fraction(&sweep, q.within);
        let candidates: Vec<Candidate> = within
            .iter()
            .take(q.top_n)
            .enumerate()
            .map(|(i, (t, p))| Candidate {
                rank: i,
                t_t: t.t_t,
                t_s: t.t_s[..rank].to_vec(),
                talg_s: p.talg,
                k: p.k,
                mtile_words: p.mtile_words,
                memory_bound: p.memory_bound(),
            })
            .collect();
        // Accuracy telemetry: validated traffic feeds the drift log
        // with (predicted T_alg, simulated time) pairs — same time
        // domain as the paper's §5.2 comparison, so the §5.3 band is
        // meaningful. The closed-form simulator costs microseconds per
        // candidate, so this never competes with the deadline.
        if q.validate {
            if let Some(log) = &self.cfg.accuracy {
                for (t, p) in within.iter().take(q.top_n) {
                    let point = DataPoint {
                        tiles: *t,
                        launch: LaunchConfig::empirical(w.dim(), t),
                    };
                    let Some(sim) = simulate_point(&w.device, &w.spec(), &w.size, &point) else {
                        continue;
                    };
                    // When a correction shaped this prediction, also
                    // log the raw model's view: the calibration fitter
                    // targets the raw prediction (corrections must not
                    // compound), and the attribution bit comes from the
                    // raw model's regime for the same reason.
                    let raw = corr.is_some().then(|| dspec.predict(&params, &w.size, t));
                    log.record(
                        &obs::accuracy::Pair {
                            source: "advisor".into(),
                            device: w.device.name.clone(),
                            stencil: w.stencil.name.clone(),
                            dim: rank as u32,
                            key: format!(
                                "{}x{}x{}t{}|tt{}|ts{:?}",
                                w.size.space[0],
                                w.size.space[1],
                                w.size.space[2],
                                w.size.time,
                                t.t_t,
                                &t.t_s[..rank]
                            ),
                            predicted_s: p.talg,
                            measured_s: sim.total_time,
                            raw_predicted_s: raw.as_ref().map(|r| r.talg),
                            memory_bound: Some(
                                raw.as_ref()
                                    .map_or_else(|| p.memory_bound(), |r| r.memory_bound()),
                            ),
                        },
                        self.cfg.accuracy_band,
                    );
                }
            }
        }
        let mut degraded = false;
        let validation = if q.validate {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                degraded = true;
                None
            } else {
                let spec = w.spec();
                let grid = init::random(w.size.space_extents(), self.cfg.seed);
                let cand_tiles: Vec<_> = within.iter().map(|(t, _)| *t).collect();
                let report = run_candidates_until(&spec, &w.size, &grid, &cand_tiles, deadline);
                if report
                    .skipped
                    .iter()
                    .any(|s| s.reason == SkipReason::DeadlineExceeded)
                {
                    degraded = true;
                }
                let best = report.best.map(|b| {
                    let run = &report.runs[b];
                    let rank_of = within
                        .iter()
                        .position(|(t, _)| *t == run.tiles)
                        .unwrap_or(usize::MAX);
                    MeasuredBest {
                        rank: rank_of,
                        t_t: run.tiles.t_t,
                        t_s: run.tiles.t_s[..rank].to_vec(),
                        wall_s: run.wall_s,
                    }
                });
                Some(ValidationReport {
                    requested: cand_tiles.len(),
                    executed: report.runs.len(),
                    skipped: report
                        .skipped
                        .iter()
                        .map(|s| SkippedOut {
                            index: s.index,
                            reason: s.reason.label().to_string(),
                        })
                        .collect(),
                    best,
                })
            }
        } else {
            None
        };
        Advice {
            id: q.id.clone(),
            device: w.device.name.clone(),
            stencil: w.stencil.name.clone(),
            size: w.size.space[..rank].to_vec(),
            time: w.size.time,
            feasible_points: tiles.len(),
            within: q.within,
            within_points: within.len(),
            degraded,
            calib_rev: if corr.is_some() {
                self.calib_rev.clone()
            } else {
                None
            },
            candidates,
            validation,
        }
    }

    /// Measured model parameters for a (device, stencil) pair, memoized
    /// across queries.
    fn model_params(&self, device: &DeviceConfig, stencil: &StencilDescriptor) -> ModelParams {
        let fp = cache::fnv64(
            serde_json::to_string(device)
                .expect("device serializes")
                .as_bytes(),
        );
        let mut memo = self.measured.lock();
        let measured = memo.entry((fp, stencil.fingerprint())).or_insert_with(|| {
            let _span = obs::span("advisor.microbench", "advisor");
            microbench::measured_params_sampled(
                device,
                stencil,
                self.cfg.citer_samples,
                self.cfg.seed,
            )
        });
        // Fault injection (tests / CI calibration smoke): bias the
        // model's view of Citer while the memo keeps the true
        // measurement. The 1.0 case must not touch the value at all.
        if self.cfg.citer_scale != 1.0 {
            let mut biased = *measured;
            biased.citer *= self.cfg.citer_scale;
            return ModelParams::from_measured(device, &biased);
        }
        ModelParams::from_measured(device, measured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{ProblemSize, StencilKind};

    fn heat_query(id: &str) -> Query {
        Query {
            id: Some(id.into()),
            workload: gpu_sim::Workload::new(
                DeviceConfig::gtx980(),
                StencilKind::Heat2D,
                ProblemSize::new_2d(128, 128, 16),
            )
            .unwrap(),
            within: 0.10,
            top_n: 5,
            validate: false,
            timeout_ms: None,
        }
    }

    #[test]
    fn cold_answer_ranks_candidates_by_predicted_time() {
        let advisor = Advisor::with_defaults();
        let a = advisor.advise(&heat_query("q1"));
        assert_eq!(a.id.as_deref(), Some("q1"));
        assert_eq!(a.device, "GTX 980");
        assert_eq!(a.stencil, "Heat2D");
        assert_eq!(a.size, vec![128, 128]);
        assert!(!a.degraded);
        assert!(a.validation.is_none());
        assert!(a.feasible_points > 0);
        assert!(a.within_points > 0 && a.within_points <= a.feasible_points);
        assert!(!a.candidates.is_empty());
        assert!(a.candidates.len() <= 5);
        // Ranked ascending by predicted time, ranks dense from 0.
        for (i, c) in a.candidates.iter().enumerate() {
            assert_eq!(c.rank, i);
            assert_eq!(c.t_s.len(), 2);
        }
        assert!(a.candidates.windows(2).all(|w| w[0].talg_s <= w[1].talg_s));
    }

    #[test]
    fn canonical_key_ignores_id_and_timeout_but_not_inputs() {
        let advisor = Advisor::with_defaults();
        let a = heat_query("a");
        let mut b = heat_query("b");
        b.timeout_ms = Some(9999);
        assert_eq!(advisor.canonical_key(&a), advisor.canonical_key(&b));
        let mut c = heat_query("a");
        c.within = 0.2;
        assert_ne!(advisor.canonical_key(&a), advisor.canonical_key(&c));
        let mut d = heat_query("a");
        d.workload.device = DeviceConfig::titan_x();
        assert_ne!(advisor.canonical_key(&a), advisor.canonical_key(&d));
        let mut e = heat_query("a");
        e.validate = true;
        assert_ne!(advisor.canonical_key(&a), advisor.canonical_key(&e));
    }

    #[test]
    fn validation_runs_the_within_set_and_reports_a_winner() {
        let advisor = Advisor::with_defaults();
        let mut q = heat_query("v");
        q.workload.size = ProblemSize::new_2d(48, 48, 8);
        q.validate = true;
        let a = advisor.advise(&q);
        assert!(!a.degraded);
        let v = a.validation.expect("validation requested");
        assert_eq!(v.requested, a.within_points);
        assert_eq!(v.executed + v.skipped.len(), v.requested);
        let best = v.best.expect("at least one candidate executed");
        assert!(best.wall_s > 0.0);
        assert!(best.rank < a.within_points);
    }

    #[test]
    fn zero_timeout_degrades_to_model_only_and_is_not_cached() {
        let advisor = Advisor::with_defaults();
        let mut q = heat_query("t");
        q.validate = true;
        q.timeout_ms = Some(0);
        let a = advisor.advise(&q);
        assert!(a.degraded);
        assert!(a.validation.is_none());
        assert!(!a.candidates.is_empty(), "model ranking is still served");
        // Degraded answers must not poison the cache: the same query
        // without a deadline gets the full validated answer.
        q.timeout_ms = None;
        q.workload.size = ProblemSize::new_2d(48, 48, 8);
        let b = advisor.advise(&q);
        assert!(!b.degraded);
        assert!(b.validation.is_some());
    }

    #[test]
    fn batch_answers_echo_ids_and_dedup_duplicates() {
        let advisor = Advisor::with_defaults();
        let qs = vec![heat_query("x"), heat_query("y")];
        let answers = advisor.advise_batch(&qs);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].id.as_deref(), Some("x"));
        assert_eq!(answers[1].id.as_deref(), Some("y"));
        let mut a = answers[0].clone();
        let mut b = answers[1].clone();
        a.id = None;
        b.id = None;
        assert_eq!(a, b, "duplicates share one computed answer");
    }
}
