//! The advisor's two cache tiers.
//!
//! Tier 1 is a per-process LRU keyed by the canonicalized query string.
//! Tier 2 is an optional on-disk JSON cache (one file per key under the
//! configured directory, named by the key's FNV-1a hash) whose entries
//! carry RunManifest-style provenance — the git revision, rayon thread
//! count, micro-benchmark seed, and argv of the writing process. A disk
//! entry is honored only when its stored canonical key matches exactly
//! (hash-collision guard) *and* its git revision matches the current
//! tree: any commit or working-tree edit invalidates the whole disk
//! cache, because a model or executor change anywhere in the workspace
//! may change the answers.

use crate::advice::Advice;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// FNV-1a over the canonical key: stable across processes and platforms.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The in-memory LRU tier.
pub struct MemCache {
    cap: usize,
    map: HashMap<String, Advice>,
    /// Keys from least- to most-recently used. Linear maintenance is
    /// fine at the advisor's capacity (hundreds, not millions).
    order: Vec<String>,
}

impl MemCache {
    pub fn new(cap: usize) -> Self {
        MemCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn get(&mut self, key: &str) -> Option<Advice> {
        let hit = self.map.get(key).cloned()?;
        self.touch(key);
        Some(hit)
    }

    pub fn put(&mut self, key: String, advice: Advice) {
        if self.map.insert(key.clone(), advice).is_none() {
            self.order.push(key);
            if self.order.len() > self.cap {
                let evicted = self.order.remove(0);
                self.map.remove(&evicted);
            }
        } else {
            self.touch(&key);
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

/// The on-disk tier.
pub struct DiskCache {
    dir: PathBuf,
    git_rev: String,
}

impl DiskCache {
    /// Open (lazily — the directory is created on first store) a disk
    /// cache rooted at `dir`, bound to the current git revision.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskCache {
            dir: dir.into(),
            git_rev: current_git_rev(),
        }
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv64(key.as_bytes())))
    }

    /// Load the advice stored for `key`, if present and still valid for
    /// the current tree. Any parse failure or provenance mismatch is a
    /// miss (the entry will be overwritten by the next store).
    pub fn load(&self, key: &str) -> Option<Advice> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        let Value::Map(entries) = &value else {
            return None;
        };
        let stored_key = match crate::jsonv::get(entries, "key") {
            Some(Value::Str(s)) => s,
            _ => return None,
        };
        if stored_key != key {
            // FNV-64 collision (or a tampered file): two canonical keys
            // hashed to the same filename. Treat as a miss — the next
            // store for either key just overwrites the file.
            obs::counter("advisor.disk_key_mismatch", 1);
            return None;
        }
        let meta = match crate::jsonv::get(entries, "meta") {
            Some(Value::Map(m)) => m,
            _ => return None,
        };
        match crate::jsonv::get(meta, "git_rev") {
            Some(Value::Str(rev)) if *rev == self.git_rev => {}
            _ => return None,
        }
        Advice::from_value(crate::jsonv::get(entries, "advice")?).ok()
    }

    /// Store `advice` under `key`, best-effort: I/O failures are
    /// reported as a telemetry event, never as a query failure.
    pub fn store(&self, key: &str, advice: &Advice, seed: u64) {
        let meta = Value::Map(vec![
            ("git_rev".into(), Value::Str(self.git_rev.clone())),
            (
                "threads".into(),
                Value::UInt(rayon::current_num_threads() as u64),
            ),
            ("seed".into(), Value::UInt(seed)),
            (
                "argv".into(),
                Value::Seq(std::env::args().map(Value::Str).collect()),
            ),
        ]);
        let entry = Value::Map(vec![
            ("key".into(), Value::Str(key.to_string())),
            ("meta".into(), meta),
            ("advice".into(), advice.to_value()),
        ]);
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            let body = serde_json::to_string(&entry).expect("cache entry serializes");
            std::fs::write(self.path(key), body)
        };
        if let Err(e) = write() {
            obs::event(
                obs::Level::Info,
                "advisor.disk_cache_write_failed",
                &[("error", e.to_string().as_str().into())],
            );
        }
    }
}

/// The current git revision with a `-dirty` suffix when the tree has
/// uncommitted changes; `"unknown"` outside a repository. (Mirrors the
/// experiments crate's RunManifest — duplicated here because the
/// dependency points the other way.)
pub(crate) fn current_git_rev() -> String {
    let out = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(rev) = out(&["rev-parse", "HEAD"]) else {
        return "unknown".to_owned();
    };
    let dirty = out(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty());
    format!("{}{}", rev.trim(), if dirty { "-dirty" } else { "" })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advice(tag: &str) -> Advice {
        Advice {
            id: Some(tag.into()),
            device: "GTX 980".into(),
            stencil: "Heat2D".into(),
            size: vec![64, 64],
            time: 8,
            feasible_points: 10,
            within: 0.1,
            within_points: 2,
            degraded: false,
            calib_rev: None,
            candidates: Vec::new(),
            validation: None,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = MemCache::new(2);
        c.put("a".into(), advice("a"));
        c.put("b".into(), advice("b"));
        // Touch "a" so "b" is the eviction victim.
        assert!(c.get("a").is_some());
        c.put("c".into(), advice("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn disk_round_trip_and_rev_invalidation() {
        let dir = std::env::temp_dir().join(format!(
            "advisor-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir);
        let key = "v1|some-canonical-key";
        assert!(cache.load(key).is_none());
        cache.store(key, &advice("x"), 7);
        let back = cache.load(key).expect("stored entry loads");
        assert_eq!(back, advice("x"));
        // A different key hashes to a different file: still a miss.
        assert!(cache.load("v1|other").is_none());
        // An entry written by a different revision is invisible.
        let mut stale = DiskCache::new(&dir);
        stale.git_rev = "somebody-else".into();
        assert!(stale.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_hash_collision_is_a_miss_not_a_wrong_answer() {
        let dir = std::env::temp_dir().join(format!(
            "advisor-cache-collision-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir);
        let key_a = "v1|canonical-key-a";
        let key_b = "v1|canonical-key-b";
        cache.store(key_a, &advice("a"), 7);
        // Force the collision FNV-64 makes astronomically unlikely:
        // plant key A's file where key B's hash points. A real collision
        // is byte-for-byte this situation — filename matches, stored
        // canonical key does not.
        std::fs::copy(cache.path(key_a), cache.path(key_b)).unwrap();
        assert!(
            cache.load(key_b).is_none(),
            "colliding entry must be a miss, never key A's answer"
        );
        // The legitimate owner of the file still hits.
        assert_eq!(cache.load(key_a), Some(advice("a")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
