//! The ahead-of-time answer store: a precomputed Eqn-31 sweep table.
//!
//! The analytical model is cheap enough to enumerate the whole query
//! space up front — the same move the codesign follow-up paper makes
//! when it turns the time model into an optimization objective. The
//! `experiments precompute` subcommand sweeps every (device preset,
//! stencil, size-bucket) cell of a configured grid through the normal
//! advisory pipeline and writes the answers to a compact JSONL table;
//! the server loads that table at startup and answers steady-state
//! traffic with a pure hash lookup — **zero model evaluations**, no
//! locks, no allocation beyond the response clone (asserted by the
//! `advisor.store_hits` vs `advisor.model_evals` counters).
//!
//! File format (one JSON object per line):
//!
//! ```text
//! {"kind":"advisor_store","version":1,"git_rev":...,"seed":...,
//!  "citer_samples":...,"entries":N}          <- header
//! {"key":"v1|dev=...","advice":{...}}        <- one line per answer
//! ```
//!
//! Entries are keyed by the advisor's full canonical key, so a lookup
//! hits only when *every* answer-determining input matches — device
//! fingerprint, stencil, exact size, band, `top_n`, micro-benchmark
//! sampling, and the enumerated space. A store is bound to the git
//! revision that computed it: loading a stale store is refused unless
//! explicitly allowed, because a model change anywhere in the
//! workspace may change the answers.

use crate::advice::Advice;
use crate::jsonv::{as_map, as_str, as_u64, get};
use crate::query::Query;
use crate::Advisor;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// The in-memory answer table: read-only after load, shared behind an
/// `Arc`, safe to probe from every worker with no lock at all.
#[derive(Debug)]
pub struct AnswerStore {
    map: HashMap<String, Advice>,
    git_rev: String,
    seed: u64,
    citer_samples: u64,
    calib_rev: Option<String>,
}

impl AnswerStore {
    /// An empty store bound to the current tree (the builder's starting
    /// point), minted without calibration.
    pub fn empty(seed: u64, citer_samples: usize) -> AnswerStore {
        AnswerStore {
            map: HashMap::new(),
            git_rev: crate::cache::current_git_rev(),
            seed,
            citer_samples: citer_samples as u64,
            calib_rev: None,
        }
    }

    /// Bind the store to the calibration revision its answers were
    /// minted under (`None` = uncalibrated).
    pub fn with_calib_rev(mut self, calib_rev: Option<String>) -> AnswerStore {
        self.calib_rev = calib_rev;
        self
    }

    /// The calibration revision the answers were minted under, if any.
    pub fn calib_rev(&self) -> Option<&str> {
        self.calib_rev.as_deref()
    }

    /// Number of precomputed answers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The git revision the answers were computed at.
    pub fn git_rev(&self) -> &str {
        &self.git_rev
    }

    /// Pure lookup: the steady-state serving path. Stored answers carry
    /// no `id`; the caller echoes the query's own.
    pub fn get(&self, key: &str) -> Option<Advice> {
        self.map.get(key).cloned()
    }

    /// Add one precomputed answer under its canonical key. The `id` is
    /// stripped so the stored bytes are query-independent.
    pub fn insert(&mut self, key: String, mut advice: Advice) {
        advice.id = None;
        self.map.insert(key, advice);
    }

    /// Compute and insert the answers for `queries` through `advisor`
    /// (cache tiers and all — recomputation of an already-known key is
    /// a cache hit, not a second sweep). Degraded answers are never
    /// stored. Returns how many entries were added or refreshed.
    pub fn precompute(&mut self, advisor: &Advisor, queries: &[Query]) -> usize {
        let _span = obs::span("advisor.precompute", "advisor");
        let mut added = 0;
        for q in queries {
            let answer = advisor.advise(q);
            if answer.degraded {
                continue;
            }
            self.insert(advisor.canonical_key(q), answer);
            added += 1;
        }
        added
    }

    /// Write the table to `path` (atomically: temp file + rename).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            let mut header_fields = vec![
                ("kind".into(), Value::Str("advisor_store".into())),
                ("version".into(), Value::UInt(1)),
                ("git_rev".into(), Value::Str(self.git_rev.clone())),
                ("seed".into(), Value::UInt(self.seed)),
                ("citer_samples".into(), Value::UInt(self.citer_samples)),
            ];
            // Omitted (not null) when uncalibrated, so stores minted
            // before calibration existed parse identically.
            if let Some(rev) = &self.calib_rev {
                header_fields.push(("calib_rev".into(), Value::Str(rev.clone())));
            }
            header_fields.push(("entries".into(), Value::UInt(self.map.len() as u64)));
            let header = Value::Map(header_fields);
            writeln!(w, "{}", serde_json::to_string(&header).expect("header"))?;
            // Deterministic file bytes: entries in sorted key order.
            let mut keys: Vec<&String> = self.map.keys().collect();
            keys.sort();
            for key in keys {
                let entry = Value::Map(vec![
                    ("key".into(), Value::Str(key.clone())),
                    ("advice".into(), self.map[key].to_value()),
                ]);
                writeln!(w, "{}", serde_json::to_string(&entry).expect("entry"))?;
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load a table written by [`write`](AnswerStore::write). Unless
    /// `allow_stale`, a store computed at a different git revision or
    /// under a different calibration revision (`expected_calib` is the
    /// serving advisor's, `None` = no calibration) is refused — its
    /// answers may no longer match what the model would compute today.
    /// A calibration mismatch bumps `advisor.store_stale_calib` whether
    /// refused or tolerated; when tolerated, the stale entries are
    /// unreachable anyway (the canonical key embeds the calibration
    /// revision), so every query re-derives instead of serving a
    /// stale-calibration answer.
    pub fn load(
        path: &Path,
        allow_stale: bool,
        expected_calib: Option<&str>,
    ) -> Result<AnswerStore, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut lines = std::io::BufReader::new(file).lines();
        let header_line = lines
            .next()
            .ok_or_else(|| format!("{}: empty store file", path.display()))?
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let header = serde_json::from_str(&header_line)
            .map_err(|e| format!("{}: bad header: {e}", path.display()))?;
        let h = as_map(&header, "store header")?;
        match get(h, "kind") {
            Some(Value::Str(k)) if k == "advisor_store" => {}
            _ => return Err(format!("{}: not an advisor store", path.display())),
        }
        match get(h, "version") {
            Some(v) if as_u64(v, "version")? == 1 => {}
            _ => return Err(format!("{}: unsupported store version", path.display())),
        }
        let git_rev = as_str(
            get(h, "git_rev").ok_or("store header missing 'git_rev'")?,
            "git_rev",
        )?
        .to_string();
        let current = crate::cache::current_git_rev();
        if git_rev != current && !allow_stale {
            return Err(format!(
                "{}: store was computed at revision {git_rev} but the tree is at {current}; \
                 re-run `experiments precompute` (or pass --store-stale-ok)",
                path.display()
            ));
        }
        let calib_rev = match get(h, "calib_rev") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_str(v, "calib_rev")?.to_string()),
        };
        if calib_rev.as_deref() != expected_calib {
            obs::counter("advisor.store_stale_calib", 1);
            if !allow_stale {
                return Err(format!(
                    "{}: store was minted under calibration {} but the server is using {}; \
                     re-run `experiments precompute` with the current --calib \
                     (or pass --store-stale-ok to load it anyway and re-derive on miss)",
                    path.display(),
                    calib_rev.as_deref().unwrap_or("none"),
                    expected_calib.unwrap_or("none"),
                ));
            }
        }
        let seed = as_u64(get(h, "seed").ok_or("store header missing 'seed'")?, "seed")?;
        let citer_samples = as_u64(
            get(h, "citer_samples").ok_or("store header missing 'citer_samples'")?,
            "citer_samples",
        )?;
        let mut map = HashMap::new();
        for (i, line) in lines.enumerate() {
            let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
            if line.trim().is_empty() {
                continue;
            }
            let value = serde_json::from_str(&line)
                .map_err(|e| format!("{}: entry {}: {e}", path.display(), i + 1))?;
            let m = as_map(&value, "store entry")?;
            let key = as_str(get(m, "key").ok_or("store entry missing 'key'")?, "key")?;
            let advice =
                Advice::from_value(get(m, "advice").ok_or("store entry missing 'advice'")?)
                    .map_err(|e| format!("{}: entry {}: {e}", path.display(), i + 1))?;
            map.insert(key.to_string(), advice);
        }
        Ok(AnswerStore {
            map,
            git_rev,
            seed,
            citer_samples,
            calib_rev,
        })
    }
}

/// The precompute grid: every (device, stencil, space-extent bucket,
/// time bucket) cell as a default-shaped query (model-only, default
/// band and `top_n`). Space extents are cubic/square per the stencil's
/// rank — a `size` bucket of 1024 means 1024² for a 2D stencil and
/// 1024³ for a 3D one. Both `experiments precompute` and `serve-bench`
/// build their universes through this one function, so precomputed
/// keys and replayed keys match by construction.
pub fn grid_queries(
    devices: &[gpu_sim::DeviceConfig],
    stencils: &[stencil_core::StencilDescriptor],
    sizes: &[usize],
    times: &[usize],
    within: f64,
    top_n: usize,
) -> Result<Vec<Query>, String> {
    let mut queries = Vec::new();
    for device in devices {
        for stencil in stencils {
            let rank = stencil.dim.rank();
            for &s in sizes {
                for &t in times {
                    let size = stencil_core::ProblemSize::from_extents(&vec![s; rank], t)?;
                    queries.push(Query {
                        id: None,
                        workload: gpu_sim::Workload::new(device.clone(), stencil.clone(), size)?,
                        within,
                        top_n,
                        validate: false,
                        timeout_ms: None,
                    });
                }
            }
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdvisorConfig;
    use gpu_sim::DeviceConfig;
    use stencil_core::StencilKind;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "advisor-store-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn precompute_write_load_round_trips_byte_identical_answers() {
        let advisor = Advisor::new(AdvisorConfig::default());
        let queries = grid_queries(
            &[DeviceConfig::gtx980()],
            &[StencilKind::Heat2D.into()],
            &[96, 128],
            &[8],
            0.10,
            5,
        )
        .unwrap();
        assert_eq!(queries.len(), 2);
        let mut store = AnswerStore::empty(0x5EED, 16);
        assert_eq!(store.precompute(&advisor, &queries), 2);
        let path = temp_path("rt");
        store.write(&path).unwrap();
        let back = AnswerStore::load(&path, false, None).expect("fresh store loads");
        assert_eq!(back.len(), 2);
        for q in &queries {
            let key = advisor.canonical_key(q);
            let direct = advisor.advise(q); // mem-cache hit: the canonical bytes
            let stored = back.get(&key).expect("precomputed key present");
            assert_eq!(stored.to_json_line(), direct.to_json_line());
        }
        assert!(back.get("v2|no-such-key").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_revision_is_refused_unless_allowed() {
        let mut store = AnswerStore::empty(7, 4);
        store.git_rev = "deadbeef-elsewhere".into();
        let path = temp_path("stale");
        store.write(&path).unwrap();
        let err = AnswerStore::load(&path, false, None).unwrap_err();
        assert!(err.contains("deadbeef-elsewhere"), "{err}");
        let loaded = AnswerStore::load(&path, true, None).expect("--store-stale-ok path");
        assert_eq!(loaded.git_rev(), "deadbeef-elsewhere");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_calibration_is_refused_and_counted() {
        // Only lib test that installs a recorder — no cross-test lock
        // needed (the integration test files each guard their own).
        let rec = std::sync::Arc::new(obs::MemoryRecorder::new(obs::Level::Info));
        obs::install(rec.clone());
        let store = AnswerStore::empty(7, 4).with_calib_rev(Some("aaaa000011112222".into()));
        let path = temp_path("stale-calib");
        store.write(&path).unwrap();
        // Server without calibration: mismatch, refused.
        let err = AnswerStore::load(&path, false, None).unwrap_err();
        assert!(err.contains("aaaa000011112222"), "{err}");
        // Server under a *different* calibration: mismatch, refused.
        let err = AnswerStore::load(&path, false, Some("bbbb000011112222")).unwrap_err();
        assert!(err.contains("bbbb000011112222"), "{err}");
        // Matching calibration: loads clean, not counted.
        let ok = AnswerStore::load(&path, false, Some("aaaa000011112222"));
        assert!(ok.is_ok(), "{ok:?}");
        assert_eq!(ok.unwrap().calib_rev(), Some("aaaa000011112222"));
        // --store-stale-ok tolerates the mismatch but still counts it.
        let tolerated = AnswerStore::load(&path, true, None).expect("stale-ok load");
        assert_eq!(tolerated.calib_rev(), Some("aaaa000011112222"));
        obs::uninstall();
        assert_eq!(rec.snapshot().counter("advisor.store_stale_calib"), 3);
        let _ = std::fs::remove_file(&path);
    }
}
