//! The concurrent socket front end: many JSON-lines connections, one
//! advisor.
//!
//! `experiments serve --listen ADDR` runs this server. Each accepted
//! connection gets a reader thread (parses lines, admits work) and a
//! writer thread (delivers answers back **in input order**); a shared
//! worker pool drains one bounded queue in small batches. The moving
//! parts, and the load-shedding story:
//!
//! * **Bounded admission** — the global queue and a per-connection
//!   outstanding-line cap are both hard bounds. A line that would
//!   exceed either is *shed* immediately with an explicit
//!   `{"error":"overloaded", ...}` response (counted on
//!   `advisor.shed`) instead of buffering without bound; the client
//!   sees backpressure as data, not as silence.
//! * **Cross-client coalescing** — a worker pops a batch (everything
//!   queued, topped up for at most `batch_window`), groups it by
//!   canonical key, and evaluates each distinct key **once**, whoever
//!   sent the duplicates. Duplicate members are answered from the
//!   group's single computation (counted on `advisor.coalesced`) and
//!   are byte-identical to a serially computed answer, bar the echoed
//!   `id`.
//! * **Deadlines from arrival** — a query's `timeout_ms` clock starts
//!   when the line is parsed, so time spent waiting in the queue
//!   counts against it: under load a deadlined validation query
//!   degrades to the model-only ranking rather than blowing its
//!   budget. A coalesced group computes under its most permissive
//!   member's deadline (an answer finished for one member is free for
//!   all).
//! * **Malformed input** — a bad line gets an `{"error": ...}`
//!   response in its slot (the same shared per-line handling as the
//!   stdin and `--queries` modes, counting `advisor.query_errors`);
//!   the connection survives.

use crate::serve::{error_line, overloaded_line, parse_slot};
use crate::{Advisor, Query};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the shared queue.
    pub workers: usize,
    /// Bound of the shared work queue; an admission beyond it sheds.
    pub queue_cap: usize,
    /// Bound on unanswered lines per connection; beyond it, sheds.
    pub conn_queue_cap: usize,
    /// How long a worker tops up a non-full batch waiting for
    /// coalescible stragglers. Zero disables the wait (a worker takes
    /// whatever is queued and runs).
    pub batch_window: Duration,
    /// Most requests a worker evaluates per batch.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().max(2)),
            queue_cap: 1024,
            conn_queue_cap: 128,
            batch_window: Duration::from_micros(500),
            max_batch: 64,
        }
    }
}

/// One admitted query waiting for a worker.
struct Request {
    query: Query,
    /// Absolute deadline, anchored at parse time (queue wait counts).
    deadline: Option<Instant>,
    conn: Arc<Conn>,
    seq: u64,
}

/// The shared bounded work queue (mutex + condvars; `try_push` never
/// blocks — over capacity is the caller's signal to shed).
struct Queue {
    state: Mutex<QueueState>,
    /// Signaled on push and on close.
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
}

impl Queue {
    fn new(cap: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit `r`, or hand it back when the queue is at capacity. The
    /// large Err is the point: the rejected request goes straight back
    /// to the shed path, never onto the heap.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, r: Request) -> Result<(), Request> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed || s.items.len() >= self.cap {
            return Err(r);
        }
        s.items.push_back(r);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Block for the first request, then top the batch up to `max` for
    /// at most `window`. An empty vector means the queue was closed and
    /// fully drained — the worker should exit.
    fn pop_batch(&self, max: usize, window: Duration) -> Vec<Request> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !s.items.is_empty() {
                break;
            }
            if s.closed {
                return Vec::new();
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        let mut batch = Vec::with_capacity(max.min(s.items.len()));
        while batch.len() < max {
            match s.items.pop_front() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        if batch.len() < max && !window.is_zero() {
            let top_up_until = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= top_up_until || s.closed {
                    break;
                }
                if s.items.is_empty() {
                    let (guard, _) = self
                        .ready
                        .wait_timeout(s, top_up_until - now)
                        .unwrap_or_else(|e| e.into_inner());
                    s = guard;
                }
                while batch.len() < max {
                    match s.items.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if batch.len() >= max {
                    break;
                }
            }
        }
        batch
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Per-connection response state: answers complete in any order (a
/// worker batch interleaves connections) but are written strictly in
/// input-line order via a seq-indexed reorder buffer.
struct Conn {
    /// Unanswered admitted lines — the per-connection backpressure bound.
    outstanding: AtomicUsize,
    out: Mutex<Outbox>,
    ready: Condvar,
}

struct Outbox {
    /// Next seq the writer will emit.
    next_write: u64,
    /// Completed answers waiting for their turn.
    done: HashMap<u64, String>,
    /// Total lines the reader admitted, fixed at connection EOF.
    total: Option<u64>,
}

impl Conn {
    fn new() -> Arc<Conn> {
        Arc::new(Conn {
            outstanding: AtomicUsize::new(0),
            out: Mutex::new(Outbox {
                next_write: 0,
                done: HashMap::new(),
                total: None,
            }),
            ready: Condvar::new(),
        })
    }

    /// Deliver the response line for input line `seq`.
    fn complete(&self, seq: u64, line: String) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        out.done.insert(seq, line);
        drop(out);
        self.ready.notify_one();
    }

    /// The reader reached EOF after `total` lines.
    fn finish(&self, total: u64) {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).total = Some(total);
        self.ready.notify_one();
    }
}

/// A running server. Dropping without [`shutdown`](Server::shutdown)
/// leaks the listener thread (the process usually exits right after);
/// tests and the bench call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Server {
    /// Bind the worker pool and acceptor over `listener` and return.
    /// The server runs until [`shutdown`](Server::shutdown).
    pub fn start(
        advisor: Arc<Advisor>,
        listener: TcpListener,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::new(cfg.queue_cap));
        // Live connections, by id, so `shutdown` can force-close them.
        // A connection removes itself when it finishes — the registry
        // must not hold a duplicate handle past that point, or the
        // client would never see EOF.
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let advisor = Arc::clone(&advisor);
                let queue = Arc::clone(&queue);
                let cfg = cfg.clone();
                std::thread::spawn(move || worker_loop(&advisor, &queue, &cfg))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut next_id = 0u64;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    obs::counter("advisor.connections", 1);
                    let id = next_id;
                    next_id += 1;
                    if let Ok(handle) = stream.try_clone() {
                        conns
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(id, handle);
                    }
                    let queue = Arc::clone(&queue);
                    let cfg = cfg.clone();
                    let conns = Arc::clone(&conns);
                    std::thread::spawn(move || {
                        serve_connection(stream, &queue, &cfg);
                        conns.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                    });
                }
            })
        };

        Ok(Server {
            addr,
            stop,
            queue,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }

    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, force-close open connections, drain the queue,
    /// and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for stream in self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Reader + writer of one connection. Runs on the reader's thread; the
/// writer is spawned here and joined before returning.
fn serve_connection(stream: TcpStream, queue: &Arc<Queue>, cfg: &ServerConfig) {
    let _span = obs::span("advisor.connection", "advisor");
    let conn = Conn::new();
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || write_loop(&conn, write_stream))
    };

    let mut seq = 0u64;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        let Some(parsed) = parse_slot(&line) else {
            continue; // blank line
        };
        match parsed {
            Err(msg) => {
                conn.outstanding.fetch_add(1, Ordering::SeqCst);
                conn.complete(seq, error_line(&msg));
            }
            Ok(query) => {
                // Backpressure, both bounds checked before admission.
                if conn.outstanding.load(Ordering::SeqCst) >= cfg.conn_queue_cap {
                    obs::counter("advisor.shed", 1);
                    conn.outstanding.fetch_add(1, Ordering::SeqCst);
                    conn.complete(seq, overloaded_line(query.id.as_deref()));
                } else {
                    let deadline = query
                        .timeout_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    conn.outstanding.fetch_add(1, Ordering::SeqCst);
                    let request = Request {
                        query,
                        deadline,
                        conn: Arc::clone(&conn),
                        seq,
                    };
                    if let Err(rejected) = queue.try_push(request) {
                        obs::counter("advisor.shed", 1);
                        let line = overloaded_line(rejected.query.id.as_deref());
                        rejected.conn.complete(rejected.seq, line);
                    }
                }
            }
        }
        seq += 1;
    }
    conn.finish(seq);
    let _ = writer.join();
}

/// Drain completed answers to the socket in input order. Every ready
/// run of consecutive answers goes out under one flush — at high
/// pipelining depth this collapses per-response syscalls into one per
/// wakeup.
fn write_loop(conn: &Conn, stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let mut ready = Vec::new();
    let mut out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        loop {
            let next = out.next_write;
            match out.done.remove(&next) {
                Some(line) => {
                    out.next_write += 1;
                    ready.push(line);
                }
                None => break,
            }
        }
        if !ready.is_empty() {
            drop(out);
            for line in ready.drain(..) {
                if writeln!(w, "{line}").is_err() {
                    return; // client went away; workers still drain safely
                }
                conn.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            if w.flush().is_err() {
                return;
            }
            out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
            continue;
        }
        if out.total == Some(out.next_write) {
            // Every admitted line answered and written: half-close so a
            // read-to-EOF client unblocks even if another handle to the
            // socket is still alive somewhere.
            let _ = w.get_ref().shutdown(std::net::Shutdown::Write);
            return;
        }
        out = conn.ready.wait(out).unwrap_or_else(|e| e.into_inner());
    }
}

/// One worker: pop a batch, coalesce by canonical key, answer each
/// distinct key once, fan the answer out to every member.
fn worker_loop(advisor: &Advisor, queue: &Queue, cfg: &ServerConfig) {
    loop {
        let batch = queue.pop_batch(cfg.max_batch, cfg.batch_window);
        if batch.is_empty() {
            return; // closed and drained
        }
        let total = batch.len();
        // Group members by canonical key, preserving first-seen order.
        let mut groups: Vec<(String, Vec<Request>)> = Vec::new();
        for r in batch {
            let key = advisor.canonical_key(&r.query);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(r),
                None => groups.push((key, vec![r])),
            }
        }
        let coalesced = total - groups.len();
        if coalesced > 0 && obs::active() {
            obs::counter("advisor.coalesced", coalesced as u64);
        }
        for (_, members) in groups {
            // Most permissive deadline in the group: an answer computed
            // for the patient member is free for the hurried one.
            let deadline = if members.iter().any(|m| m.deadline.is_none()) {
                None
            } else {
                members.iter().filter_map(|m| m.deadline).max()
            };
            let answer = advisor.advise_at(&members[0].query, deadline);
            // Serialize once; a member only pays for its own
            // serialization when its echoed id differs (candidate
            // float formatting dominates the response cost).
            let base_line = answer.to_json_line();
            for m in members {
                let line = if m.query.id == answer.id {
                    base_line.clone()
                } else {
                    let mut a = answer.clone();
                    a.id = m.query.id.clone();
                    a.to_json_line()
                };
                m.conn.complete(m.seq, line);
            }
        }
    }
}
