//! Advisory answers: what the service returns for one query.
//!
//! An [`Advice`] is rendered as one compact JSON line. It deliberately
//! carries **no** cache-provenance field: an answer served from the
//! in-memory or on-disk cache is byte-identical to the answer computed
//! cold (provenance lives in the `advisor.*` telemetry counters
//! instead). The struct both serializes (derive) and re-parses from the
//! shim's [`Value`] tree ([`Advice::from_value`]) so the disk cache can
//! round-trip answers exactly — every numeric field is an integer or an
//! `f64`, and Rust's shortest-round-trip float formatting guarantees
//! `f64 → JSON → f64` is lossless.

use crate::jsonv::{as_bool, as_f64, as_map, as_seq, as_str, as_u64, get};
use serde::{Serialize, Value};

/// One ranked tile-size candidate from the model sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Candidate {
    /// Position in the within-band ranking (0 = predicted optimum).
    pub rank: usize,
    /// Time-tile extent `t_T`.
    pub t_t: usize,
    /// Space-tile extents, one per stencil dimension.
    pub t_s: Vec<usize>,
    /// Predicted execution time `T_alg` (s).
    pub talg_s: f64,
    /// Modeled hyper-threading factor `k`.
    pub k: usize,
    /// Modeled shared-memory footprint `M_tile` (words).
    pub mtile_words: u64,
    /// Whether the modeled tile is memory-bound (`m' > c`).
    pub memory_bound: bool,
}

/// The measured winner of a validation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MeasuredBest {
    /// The winner's rank in the model's candidate list.
    pub rank: usize,
    /// Time-tile extent.
    pub t_t: usize,
    /// Space-tile extents, one per stencil dimension.
    pub t_s: Vec<usize>,
    /// Measured wall-clock time (s).
    pub wall_s: f64,
}

/// A candidate the validation run did not execute.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SkippedOut {
    /// Index into the submitted candidate list.
    pub index: usize,
    /// Why (`"infeasible"` / `"deadline"`).
    pub reason: String,
}

/// Outcome of executing the within-band candidate set.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValidationReport {
    /// Candidates submitted to the executor.
    pub requested: usize,
    /// Candidates actually executed.
    pub executed: usize,
    /// Candidates skipped, with reasons.
    pub skipped: Vec<SkippedOut>,
    /// The measured winner (absent when nothing executed).
    pub best: Option<MeasuredBest>,
}

/// The service's answer to one [`crate::Query`].
///
/// `Serialize` is hand-written rather than derived for one reason:
/// [`calib_rev`](Advice::calib_rev) must be *absent* — not `null` —
/// when no calibration store is loaded, so the bytes of an uncalibrated
/// answer are identical to what every pre-calibration release produced
/// (the shim derive renders `None` as `null`, which would break that).
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The query's `id`, echoed verbatim.
    pub id: Option<String>,
    /// Resolved device name.
    pub device: String,
    /// Stencil name.
    pub stencil: String,
    /// Space extents, one per stencil dimension.
    pub size: Vec<usize>,
    /// Time steps.
    pub time: usize,
    /// Size of the enumerated feasible space (Eqn 31).
    pub feasible_points: usize,
    /// The candidate band fraction the query asked for.
    pub within: f64,
    /// How many feasible points fall within the band.
    pub within_points: usize,
    /// True when a per-query deadline cut the answer down to the
    /// model-only ranking (validation skipped or truncated).
    pub degraded: bool,
    /// Revision of the calibration store whose corrections shaped this
    /// ranking; `None` (omitted from the JSON) when the answer is the
    /// uncorrected model's.
    pub calib_rev: Option<String>,
    /// The ranked candidates (up to `top_n`), best predicted first.
    pub candidates: Vec<Candidate>,
    /// Validation outcome, when the query asked for it and the deadline
    /// allowed it to start.
    pub validation: Option<ValidationReport>,
}

impl Serialize for Advice {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("device".to_string(), self.device.to_value()),
            ("stencil".to_string(), self.stencil.to_value()),
            ("size".to_string(), self.size.to_value()),
            ("time".to_string(), self.time.to_value()),
            (
                "feasible_points".to_string(),
                self.feasible_points.to_value(),
            ),
            ("within".to_string(), self.within.to_value()),
            ("within_points".to_string(), self.within_points.to_value()),
            ("degraded".to_string(), self.degraded.to_value()),
        ];
        if let Some(rev) = &self.calib_rev {
            fields.push(("calib_rev".to_string(), Value::Str(rev.clone())));
        }
        fields.push(("candidates".to_string(), self.candidates.to_value()));
        fields.push(("validation".to_string(), self.validation.to_value()));
        Value::Map(fields)
    }
}

impl Advice {
    /// Render as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("advice serializes")
    }

    /// Reconstruct an advice from its parsed JSON tree — the inverse of
    /// the `Serialize` derive, used by the disk cache.
    pub fn from_value(v: &Value) -> Result<Advice, String> {
        let m = as_map(v, "advice")?;
        let need = |k: &str| get(m, k).ok_or_else(|| format!("advice missing field '{k}'"));
        let id = match get(m, "id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_str(v, "id")?.to_string()),
        };
        let candidates = as_seq(need("candidates")?, "candidates")?
            .iter()
            .map(candidate_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let validation = match get(m, "validation") {
            None | Some(Value::Null) => None,
            Some(v) => Some(validation_from_value(v)?),
        };
        let calib_rev = match get(m, "calib_rev") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_str(v, "calib_rev")?.to_string()),
        };
        Ok(Advice {
            id,
            device: as_str(need("device")?, "device")?.to_string(),
            stencil: as_str(need("stencil")?, "stencil")?.to_string(),
            size: usize_seq(need("size")?, "size")?,
            time: as_u64(need("time")?, "time")? as usize,
            feasible_points: as_u64(need("feasible_points")?, "feasible_points")? as usize,
            within: as_f64(need("within")?, "within")?,
            within_points: as_u64(need("within_points")?, "within_points")? as usize,
            degraded: as_bool(need("degraded")?, "degraded")?,
            calib_rev,
            candidates,
            validation,
        })
    }
}

fn usize_seq(v: &Value, what: &str) -> Result<Vec<usize>, String> {
    as_seq(v, what)?
        .iter()
        .map(|e| as_u64(e, what).map(|u| u as usize))
        .collect()
}

fn candidate_from_value(v: &Value) -> Result<Candidate, String> {
    let m = as_map(v, "candidate")?;
    let need = |k: &str| get(m, k).ok_or_else(|| format!("candidate missing field '{k}'"));
    Ok(Candidate {
        rank: as_u64(need("rank")?, "rank")? as usize,
        t_t: as_u64(need("t_t")?, "t_t")? as usize,
        t_s: usize_seq(need("t_s")?, "t_s")?,
        talg_s: as_f64(need("talg_s")?, "talg_s")?,
        k: as_u64(need("k")?, "k")? as usize,
        mtile_words: as_u64(need("mtile_words")?, "mtile_words")?,
        memory_bound: as_bool(need("memory_bound")?, "memory_bound")?,
    })
}

fn validation_from_value(v: &Value) -> Result<ValidationReport, String> {
    let m = as_map(v, "validation")?;
    let need = |k: &str| get(m, k).ok_or_else(|| format!("validation missing field '{k}'"));
    let skipped = as_seq(need("skipped")?, "skipped")?
        .iter()
        .map(|s| {
            let m = as_map(s, "skipped entry")?;
            Ok::<_, String>(SkippedOut {
                index: as_u64(
                    get(m, "index").ok_or("skipped entry missing 'index'")?,
                    "index",
                )? as usize,
                reason: as_str(
                    get(m, "reason").ok_or("skipped entry missing 'reason'")?,
                    "reason",
                )?
                .to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let best = match get(m, "best") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let m = as_map(v, "best")?;
            let need = |k: &str| get(m, k).ok_or_else(|| format!("best missing field '{k}'"));
            Some(MeasuredBest {
                rank: as_u64(need("rank")?, "rank")? as usize,
                t_t: as_u64(need("t_t")?, "t_t")? as usize,
                t_s: usize_seq(need("t_s")?, "t_s")?,
                wall_s: as_f64(need("wall_s")?, "wall_s")?,
            })
        }
    };
    Ok(ValidationReport {
        requested: as_u64(need("requested")?, "requested")? as usize,
        executed: as_u64(need("executed")?, "executed")? as usize,
        skipped,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Advice {
        Advice {
            id: Some("q7".into()),
            device: "GTX 980".into(),
            stencil: "Heat2D".into(),
            size: vec![512, 512],
            time: 64,
            feasible_points: 850,
            within: 0.1,
            within_points: 23,
            degraded: false,
            calib_rev: None,
            candidates: vec![Candidate {
                rank: 0,
                t_t: 16,
                t_s: vec![8, 128],
                talg_s: 1.25e-3,
                k: 2,
                mtile_words: 4096,
                memory_bound: true,
            }],
            validation: Some(ValidationReport {
                requested: 23,
                executed: 22,
                skipped: vec![SkippedOut {
                    index: 4,
                    reason: "deadline".into(),
                }],
                best: Some(MeasuredBest {
                    rank: 3,
                    t_t: 12,
                    t_s: vec![6, 96],
                    wall_s: 0.017,
                }),
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = sample();
        let line = a.to_json_line();
        let back = Advice::from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(a, back);
        // And re-serializing produces the same bytes — the property the
        // disk cache relies on.
        assert_eq!(line, back.to_json_line());
    }

    #[test]
    fn optional_fields_round_trip_as_null() {
        let mut a = sample();
        a.id = None;
        a.validation = None;
        let line = a.to_json_line();
        assert!(line.contains("\"id\":null"));
        assert!(line.contains("\"validation\":null"));
        let back = Advice::from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn calib_rev_is_omitted_when_absent_and_round_trips_when_set() {
        // Absence must be *byte* absence, not null — uncalibrated
        // answers keep their pre-calibration serialization.
        let a = sample();
        assert!(!a.to_json_line().contains("calib_rev"));
        let mut b = sample();
        b.calib_rev = Some("00c0ffee00c0ffee".into());
        let line = b.to_json_line();
        assert!(line.contains("\"calib_rev\":\"00c0ffee00c0ffee\""));
        let back = Advice::from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(b, back);
        assert_eq!(line, back.to_json_line());
    }
}
