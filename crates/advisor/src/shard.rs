//! The sharded in-memory answer cache — the serving hot path's tier 1.
//!
//! The PR-4 advisor kept one `Mutex<MemCache>`; under a concurrent
//! server every worker serializes on that lock just to answer a warm
//! query. Here the LRU is split into [`SHARDS`] independent shards,
//! each behind its own mutex on its own cache line (the same
//! padding discipline as `obs::ShardedRecorder`), so queries against
//! different keys never contend. A shard is picked by the FNV-64 hash
//! of the full canonical key — the key starts with the device
//! fingerprint and stencil name, so one device×stencil pair's working
//! set spreads across shards instead of piling onto one hot stripe
//! when traffic is skewed (and two pairs never share lock state by
//! construction of the hash).
//!
//! Eviction is LRU *per shard* (capacity is divided evenly), which
//! under a hashed key distribution approximates global LRU to within
//! the usual per-shard variance; the cache stays exact in the sense
//! that a `get` only ever returns the byte-identical advice a `put`
//! stored under that key.

use crate::advice::Advice;
use crate::cache::{fnv64, MemCache};
use parking_lot::Mutex;

/// Number of shards. A small power of two: enough that a worker pool
/// sized to the core count rarely collides, small enough that the
/// per-shard capacity split stays meaningful.
pub const SHARDS: usize = 16;

/// One shard per cache line so neighboring locks never false-share.
#[repr(align(64))]
struct PaddedShard(Mutex<MemCache>);

/// A sharded, interior-mutable LRU over canonical-key → advice.
pub struct ShardedCache {
    shards: Vec<PaddedShard>,
}

impl ShardedCache {
    /// A cache holding `capacity` answers in total, split evenly over
    /// the shards (every shard holds at least one).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| PaddedShard(Mutex::new(MemCache::new(per_shard))))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<MemCache> {
        &self.shards[(fnv64(key.as_bytes()) as usize) % SHARDS].0
    }

    /// Look up `key`, refreshing its LRU position in its shard.
    pub fn get(&self, key: &str) -> Option<Advice> {
        self.shard(key).lock().get(key)
    }

    /// Insert (or refresh) `key`, evicting that shard's LRU victim when
    /// the shard is over capacity.
    pub fn put(&self, key: String, advice: Advice) {
        self.shard(&key).lock().put(key, advice)
    }

    /// Total entries across all shards (snapshot; shards are read one
    /// at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.0.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.0.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advice(tag: &str) -> Advice {
        Advice {
            id: Some(tag.into()),
            device: "GTX 980".into(),
            stencil: "Heat2D".into(),
            size: vec![64, 64],
            time: 8,
            feasible_points: 10,
            within: 0.1,
            within_points: 2,
            degraded: false,
            calib_rev: None,
            candidates: Vec::new(),
            validation: None,
        }
    }

    #[test]
    fn round_trips_exact_values_across_shards() {
        let c = ShardedCache::new(256);
        for i in 0..100 {
            c.put(format!("key-{i}"), advice(&format!("a{i}")));
        }
        assert_eq!(c.len(), 100);
        for i in 0..100 {
            let hit = c.get(&format!("key-{i}")).expect("stored key present");
            assert_eq!(hit, advice(&format!("a{i}")));
        }
        assert!(c.get("key-100").is_none());
    }

    #[test]
    fn per_shard_eviction_bounds_total_size() {
        // capacity 16 → one slot per shard; keys spread by hash, so the
        // total can never exceed SHARDS entries.
        let c = ShardedCache::new(16);
        for i in 0..1000 {
            c.put(format!("key-{i}"), advice("x"));
        }
        assert!(c.len() <= SHARDS, "len {} > shards {SHARDS}", c.len());
        assert!(!c.is_empty());
    }
}
