//! JSON-lines service loop: the transport behind `experiments serve`.
//!
//! The loop reads queries (one JSON object per line) to end-of-input,
//! answers the whole batch through [`Advisor::advise_batch`] — so
//! duplicate queries inside one request stream are computed once — and
//! writes one answer line per input line, in input order. A line that
//! fails to parse produces an `{"error": ...}` line in its slot instead
//! of aborting the stream; blank lines are ignored.

use crate::{Advisor, Query};
use serde::Value;
use std::io::{BufRead, Write};

/// What a service pass processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Lines answered with an advice.
    pub answered: usize,
    /// Lines answered with a parse error.
    pub errors: usize,
}

/// One output slot per non-blank input line.
enum Slot {
    /// Index into the parsed-query batch.
    Query(usize),
    Error(String),
}

/// Shared per-line request handling: `None` for a blank line (no
/// response slot), otherwise the parsed query or the error message that
/// the caller must answer with [`error_line`]. Every parse failure is
/// counted on `advisor.query_errors`, whichever transport saw it —
/// stdin, a `--queries` file, or a socket connection.
pub(crate) fn parse_slot(line: &str) -> Option<Result<Query, String>> {
    let text = line.trim();
    if text.is_empty() {
        return None;
    }
    Some(Query::parse_line(text).inspect_err(|_| {
        obs::counter("advisor.query_errors", 1);
    }))
}

/// The structured response for a malformed input line.
pub(crate) fn error_line(msg: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(msg.to_string()),
    )]))
    .expect("error line serializes")
}

/// The backpressure response for a shed query: explicit, parseable, and
/// carrying the query's own `id` so a pipelining client can tell which
/// request was refused.
pub(crate) fn overloaded_line(id: Option<&str>) -> String {
    let mut fields = vec![("error".to_string(), Value::Str("overloaded".to_string()))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::Str(id.to_string())));
    }
    serde_json::to_string(&Value::Map(fields)).expect("overloaded line serializes")
}

/// Run the service loop over `input`, writing answers to `out`.
pub fn serve_lines<R: BufRead, W: Write>(
    advisor: &Advisor,
    input: R,
    out: &mut W,
) -> std::io::Result<ServeStats> {
    let _span = obs::span("advisor.serve", "advisor");
    let mut queries = Vec::new();
    let mut slots = Vec::new();
    for line in input.lines() {
        let line = line?;
        match parse_slot(&line) {
            None => continue,
            Some(Ok(q)) => {
                slots.push(Slot::Query(queries.len()));
                queries.push(q);
            }
            Some(Err(e)) => slots.push(Slot::Error(e)),
        }
    }
    let answers = advisor.advise_batch(&queries);
    let mut stats = ServeStats {
        answered: 0,
        errors: 0,
    };
    for slot in slots {
        match slot {
            Slot::Query(i) => {
                stats.answered += 1;
                writeln!(out, "{}", answers[i].to_json_line())?;
            }
            Slot::Error(msg) => {
                stats.errors += 1;
                writeln!(out, "{}", error_line(&msg))?;
            }
        }
    }
    out.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_lines_become_error_slots_in_order() {
        let advisor = Advisor::with_defaults();
        let input = "\nnot json\n\
            {\"device\": \"GTX 980\", \"stencil\": \"Heat2D\", \"size\": [64, 64], \"time\": 8}\n\
            {\"device\": \"nope\", \"stencil\": \"Heat2D\", \"size\": [64, 64], \"time\": 8}\n";
        let mut out = Vec::new();
        let stats = serve_lines(&advisor, input.as_bytes(), &mut out).unwrap();
        assert_eq!(
            stats,
            ServeStats {
                answered: 1,
                errors: 2
            }
        );
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"error\":"));
        assert!(lines[1].contains("\"stencil\":\"Heat2D\""));
        assert!(lines[2].contains("unknown device preset"));
    }
}
