//! Integration tests of the advisory service: cache-tier byte
//! identity, batch dedup through the JSON-lines loop, and graceful
//! degradation under a zero deadline.
//!
//! Tests that install a telemetry recorder share one process-global
//! lock — the obs recorder slot is process-wide.

use advisor::{Advisor, AdvisorConfig, Query};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_obs() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("advisor-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn query_line(id: &str, stencil: &str) -> String {
    format!(
        "{{\"id\": \"{id}\", \"device\": \"GTX 980\", \"stencil\": \"{stencil}\", \
         \"size\": [96, 96], \"time\": 8}}"
    )
}

fn parse(line: &str) -> Query {
    Query::parse_line(line).expect("test query parses")
}

#[test]
fn cache_hits_are_byte_identical_to_cold_answers() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let dir = temp_dir("bytes");
    let cfg = AdvisorConfig {
        disk_dir: Some(dir.clone()),
        ..AdvisorConfig::default()
    };
    let q = parse(&query_line("q1", "Heat2D"));

    // Cold: computed, then stored in both tiers.
    let advisor = Advisor::new(cfg.clone());
    let cold = advisor.advise(&q).to_json_line();
    // Warm: served from the in-memory LRU.
    let warm = advisor.advise(&q).to_json_line();
    assert_eq!(cold, warm, "memory-tier answer must be byte-identical");
    // A fresh advisor over the same directory has an empty memory tier:
    // this one is served from disk.
    let fresh = Advisor::new(cfg);
    let from_disk = fresh.advise(&q).to_json_line();
    assert_eq!(cold, from_disk, "disk-tier answer must be byte-identical");

    obs::uninstall();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.queries"), 3);
    assert_eq!(snap.counter("advisor.cache_hits_mem"), 1);
    assert_eq!(snap.counter("advisor.cache_hits_disk"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_round_trip_dedups_duplicate_queries() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let advisor = Advisor::with_defaults();
    // Three queries, two of them identical up to `id`.
    let input = format!(
        "{}\n{}\n{}\n",
        query_line("a", "Heat2D"),
        query_line("b", "Jacobi2D"),
        query_line("c", "Heat2D"),
    );
    let mut out = Vec::new();
    let stats = advisor::serve_lines(&advisor, input.as_bytes(), &mut out).unwrap();
    assert_eq!(stats.answered, 3);
    assert_eq!(stats.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    // Answers come back in input order, ids echoed.
    assert!(lines[0].contains("\"id\":\"a\""));
    assert!(lines[1].contains("\"id\":\"b\""));
    assert!(lines[2].contains("\"id\":\"c\""));
    // The duplicate differs from its twin only in the echoed id.
    assert_eq!(
        lines[0].replace("\"id\":\"a\"", "\"id\":\"c\""),
        lines[2].to_string()
    );
    obs::uninstall();
    let snap = rec.snapshot();
    assert!(
        snap.counter("advisor.batch_dedup") >= 1,
        "duplicate in the batch must be counted"
    );
    assert_eq!(
        snap.counter("advisor.queries"),
        2,
        "only distinct queries computed"
    );
}

#[test]
fn validated_queries_feed_the_accuracy_log_and_latency_histograms() {
    let _g = lock_obs();
    let rec = Arc::new(obs::ShardedRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let dir = temp_dir("acc");
    let log_path = dir.join("accuracy_log.jsonl");
    let advisor = Advisor::new(AdvisorConfig {
        accuracy: Some(Arc::new(
            obs::AccuracyLog::open(&log_path).expect("open accuracy log"),
        )),
        ..AdvisorConfig::default()
    });
    let line = "{\"id\": \"v1\", \"device\": \"GTX 980\", \"stencil\": \"Heat2D\", \
                \"size\": [64, 64], \"time\": 8, \"validate\": true}";
    let answer = advisor.advise(&parse(line));
    assert!(
        !answer.degraded,
        "validation must complete with no deadline"
    );
    obs::uninstall();

    // Every validated candidate logged one (predicted, measured) pair...
    let snap = rec.snapshot();
    assert!(snap.counter("model.accuracy_pairs") >= 1);
    let text = std::fs::read_to_string(&log_path).expect("accuracy log written");
    assert!(!text.is_empty());
    let first = text.lines().next().unwrap();
    for needle in [
        "\"kind\":\"accuracy\"",
        "\"source\":\"advisor\"",
        "\"stencil\":\"Heat2D\"",
        "\"predicted_s\":",
        "\"measured_s\":",
        "\"rel_err\":",
    ] {
        assert!(first.contains(needle), "{needle} missing from {first}");
    }
    // ...the per-segment rolling rel-error gauge is populated...
    let gauge = snap
        .gauges
        .iter()
        .find(|(k, _)| k.starts_with("model.rel_err.advisor."))
        .map(|(k, v)| (k.clone(), *v));
    let (name, rmse) = gauge.expect("rel_err gauge populated");
    assert!(name.contains("heat2d"), "{name}");
    assert!(rmse.is_finite() && rmse >= 0.0);
    // ...and the query latency landed in the per-outcome histogram.
    let lat = snap
        .histogram("advisor.latency_ms.ok")
        .expect("latency histogram for the ok outcome");
    assert_eq!(lat.count, 1);
    assert!(lat.sum > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_deadline_serves_a_degraded_model_only_answer() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let advisor = Advisor::with_defaults();
    let line = "{\"id\": \"slow\", \"device\": \"Titan X\", \"stencil\": \"Jacobi2D\", \
                \"size\": [96, 96], \"time\": 8, \"validate\": true, \"timeout_ms\": 0}";
    let mut out = Vec::new();
    advisor::serve_lines(&advisor, line.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"degraded\":true"), "{text}");
    assert!(text.contains("\"validation\":null"), "{text}");
    // The model-only ranking is still present.
    assert!(text.contains("\"candidates\":[{\"rank\":0"), "{text}");
    obs::uninstall();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.degraded"), 1);
    assert_eq!(
        snap.histogram("advisor.latency_ms.degraded")
            .expect("latency histogram for the degraded outcome")
            .count,
        1
    );
}
