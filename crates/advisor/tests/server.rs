//! Integration tests of the concurrent socket server: round-trip byte
//! identity against the direct API, malformed-line survival,
//! cross-client coalescing, store-backed zero-model-eval serving,
//! backpressure shedding, and arrival-anchored deadlines.
//!
//! Tests that install a telemetry recorder share one process-global
//! lock — the obs recorder slot is process-wide.

use advisor::{Advisor, AdvisorConfig, AnswerStore, Query, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn lock_obs() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn query_line(id: &str, stencil: &str, size: usize) -> String {
    format!(
        "{{\"id\": \"{id}\", \"device\": \"GTX 980\", \"stencil\": \"{stencil}\", \
         \"size\": [{size}, {size}], \"time\": 8}}"
    )
}

fn start_server(advisor: Advisor, cfg: ServerConfig) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    Server::start(Arc::new(advisor), listener, cfg).expect("server starts")
}

/// Send `lines` over one connection, shut down the write half, and
/// collect every response line.
fn roundtrip(server: &Server, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    for line in lines {
        writeln!(stream, "{line}").expect("send");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("response line"))
        .collect()
}

#[test]
fn socket_answers_are_byte_identical_to_direct_advise() {
    let _g = lock_obs();
    let server = start_server(Advisor::with_defaults(), ServerConfig::default());
    let lines = [
        query_line("s1", "Heat2D", 96),
        query_line("s2", "Jacobi2D", 96),
    ];
    let responses = roundtrip(&server, &lines);
    server.shutdown();
    assert_eq!(responses.len(), 2);

    let oracle = Advisor::with_defaults();
    for (line, response) in lines.iter().zip(&responses) {
        let q = Query::parse_line(line).unwrap();
        let direct = oracle.advise(&q).to_json_line();
        assert_eq!(*response, direct, "socket answer differs from direct API");
    }
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let server = start_server(Advisor::with_defaults(), ServerConfig::default());
    let lines = [
        "this is not json".to_string(),
        String::new(), // blank: ignored, no response slot
        query_line("ok", "Heat2D", 96),
        "{\"device\": \"no-such-gpu\", \"stencil\": \"Heat2D\", \"size\": [64, 64], \"time\": 8}"
            .to_string(),
    ];
    let responses = roundtrip(&server, &lines);
    server.shutdown();
    obs::uninstall();

    assert_eq!(responses.len(), 3, "one response per non-blank line");
    assert!(responses[0].starts_with("{\"error\":"), "{}", responses[0]);
    assert!(responses[1].contains("\"id\":\"ok\""), "{}", responses[1]);
    assert!(
        responses[2].contains("unknown device preset"),
        "{}",
        responses[2]
    );
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.query_errors"), 2);
    assert_eq!(snap.counter("advisor.queries"), 1);
    assert_eq!(snap.counter("advisor.connections"), 1);
}

#[test]
fn malformed_inline_descriptors_error_without_dropping_the_connection() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let server = start_server(Advisor::with_defaults(), ServerConfig::default());
    // An inline descriptor with the wrong coefficient count, then one
    // with an unknown footprint, then a well-formed inline star —
    // proving the connection survives descriptor validation failures.
    let bad_coeffs = "{\"id\": \"bc\", \"device\": \"GTX 980\", \"stencil\": \
         {\"name\": \"broken\", \"dim\": 2, \"coefficients\": [0.25, 0.25]}, \
         \"size\": [96, 96], \"time\": 8}";
    let bad_footprint = "{\"id\": \"bf\", \"device\": \"GTX 980\", \"stencil\": \
         {\"name\": \"hex\", \"dim\": 2, \"footprint\": \"hexagon\", \
          \"coefficients\": [0.2, 0.2, 0.2, 0.2, 0.2]}, \
         \"size\": [96, 96], \"time\": 8}";
    let good = "{\"id\": \"inl\", \"device\": \"GTX 980\", \"stencil\": \
         {\"name\": \"mean5\", \"dim\": 2, \
          \"coefficients\": [0.2, 0.2, 0.2, 0.2, 0.2]}, \
         \"size\": [96, 96], \"time\": 8}";
    let lines = [
        bad_coeffs.to_string(),
        bad_footprint.to_string(),
        good.to_string(),
    ];
    let responses = roundtrip(&server, &lines);
    server.shutdown();
    obs::uninstall();

    assert_eq!(responses.len(), 3, "one response per line");
    assert!(responses[0].starts_with("{\"error\":"), "{}", responses[0]);
    assert!(
        responses[0].contains("invalid stencil descriptor"),
        "{}",
        responses[0]
    );
    assert!(responses[1].starts_with("{\"error\":"), "{}", responses[1]);
    assert!(responses[1].contains("'star' or 'box'"), "{}", responses[1]);
    assert!(
        responses[2].contains("\"id\":\"inl\"") && responses[2].contains("\"candidates\":"),
        "valid inline descriptor answered after the errors: {}",
        responses[2]
    );
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.query_errors"), 2);
    assert_eq!(snap.counter("advisor.queries"), 1);
}

#[test]
fn coalesced_duplicates_are_byte_identical_and_computed_once() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    // One worker and a generous batch window: concurrent duplicates
    // land in one batch deterministically.
    let server = start_server(
        Advisor::with_defaults(),
        ServerConfig {
            workers: 1,
            batch_window: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                writeln!(stream, "{}", query_line(&format!("c{i}"), "Heat2D", 96)).unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut line = String::new();
                BufReader::new(stream).read_line(&mut line).unwrap();
                line.trim_end().to_string()
            })
        })
        .collect();
    let responses: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    server.shutdown();
    obs::uninstall();

    // Every client got its own id echoed on an otherwise byte-identical
    // answer — exactly what serial evaluation would have produced.
    let oracle = Advisor::with_defaults()
        .advise(&Query::parse_line(&query_line("c0", "Heat2D", 96)).unwrap())
        .to_json_line();
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            *r,
            oracle.replace("\"id\":\"c0\"", &format!("\"id\":\"c{i}\"")),
            "client {i}"
        );
    }
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.queries"), 1, "evaluated once");
    assert_eq!(snap.counter("advisor.coalesced"), 3, "three duplicates");
}

#[test]
fn store_hits_serve_with_zero_model_evaluations() {
    let _g = lock_obs();
    // Precompute the answers outside telemetry...
    let universe = [
        query_line("p1", "Heat2D", 96),
        query_line("p2", "Heat2D", 128),
    ];
    let queries: Vec<Query> = universe
        .iter()
        .map(|l| Query::parse_line(l).unwrap())
        .collect();
    let precomputer = Advisor::with_defaults();
    let mut store = AnswerStore::empty(0x5EED, 16);
    assert_eq!(store.precompute(&precomputer, &queries), 2);

    // ...then serve them from a fresh advisor whose only warm tier is
    // the store.
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let server = start_server(
        Advisor::new(AdvisorConfig {
            store: Some(Arc::new(store)),
            ..AdvisorConfig::default()
        }),
        ServerConfig::default(),
    );
    let responses = roundtrip(&server, &universe);
    server.shutdown();
    obs::uninstall();

    assert_eq!(responses.len(), 2);
    for (line, response) in universe.iter().zip(&responses) {
        let direct = precomputer
            .advise(&Query::parse_line(line).unwrap())
            .to_json_line();
        assert_eq!(*response, direct, "store answer differs from computed");
    }
    let snap = rec.snapshot();
    assert_eq!(snap.counter("advisor.store_hits"), 2);
    assert_eq!(snap.counter("advisor.model_evals"), 0, "pure lookup");
    assert_eq!(snap.histogram("advisor.latency_ms.store").unwrap().count, 2);
}

#[test]
fn overload_sheds_with_an_explicit_response_instead_of_buffering() {
    let _g = lock_obs();
    let rec = Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    // A queue of 1 on one worker, and a per-connection cap of 2: a
    // burst of distinct (slow, cold) queries must shed most of itself.
    let server = start_server(
        Advisor::with_defaults(),
        ServerConfig {
            workers: 1,
            queue_cap: 1,
            conn_queue_cap: 2,
            batch_window: Duration::ZERO,
            max_batch: 1,
        },
    );
    let lines: Vec<String> = (0..20)
        .map(|i| query_line(&format!("b{i}"), "Heat2D", 64 + 2 * i))
        .collect();
    let responses = roundtrip(&server, &lines);
    server.shutdown();
    obs::uninstall();

    assert_eq!(responses.len(), 20, "every line gets exactly one response");
    let shed = responses
        .iter()
        .filter(|r| r.contains("\"error\":\"overloaded\""))
        .count();
    let answered = responses
        .iter()
        .filter(|r| r.contains("\"candidates\":"))
        .count();
    assert_eq!(shed + answered, 20);
    assert!(shed > 0, "burst over a queue of 1 must shed");
    assert!(answered > 0, "admitted queries still answered");
    // Shed responses carry the query's own id.
    let first_shed = responses
        .iter()
        .find(|r| r.contains("\"error\":\"overloaded\""))
        .unwrap();
    assert!(first_shed.contains("\"id\":\"b"), "{first_shed}");
    assert_eq!(snapshot_counter(&rec, "advisor.shed"), shed as u64);
}

fn snapshot_counter(rec: &obs::MemoryRecorder, name: &str) -> u64 {
    rec.snapshot().counter(name)
}

#[test]
fn deadline_is_anchored_at_arrival_so_queue_wait_degrades() {
    let _g = lock_obs();
    // timeout_ms 0 with validate: the deadline expires the moment the
    // line is parsed, so however fast the worker is, the answer must
    // degrade to the model-only ranking — never blow the budget.
    let server = start_server(Advisor::with_defaults(), ServerConfig::default());
    let line = "{\"id\": \"dl\", \"device\": \"GTX 980\", \"stencil\": \"Heat2D\", \
                \"size\": [64, 64], \"time\": 8, \"validate\": true, \"timeout_ms\": 0}";
    let responses = roundtrip(&server, &[line.to_string()]);
    server.shutdown();
    assert_eq!(responses.len(), 1);
    assert!(
        responses[0].contains("\"degraded\":true"),
        "{}",
        responses[0]
    );
    assert!(
        responses[0].contains("\"candidates\":[{\"rank\":0"),
        "model ranking still served: {}",
        responses[0]
    );
}
