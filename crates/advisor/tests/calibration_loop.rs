//! The closed calibration loop, end to end and in-process: a known
//! Citer bias is injected into the advisor's model, validated serving
//! logs the (biased) predicted-vs-measured pairs, a calibration store
//! is fitted from that log, and re-serving with the store loaded must
//! shrink the served per-segment RMSE by at least 2× — the accuracy
//! measurements stop being discarded and start correcting the model.

use advisor::{Advisor, AdvisorConfig, Query};
use calib::CalibrationStore;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_obs() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("advisor-calib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Distinct validated Heat2D queries in one (device, stencil, dim)
/// segment. The problems are big enough that T_alg is dominated by the
/// per-tile terms the Citer bias actually inflates (tiny grids drown in
/// launch overhead and the bias becomes invisible); the zero deadline
/// degrades the answer *after* the accuracy pairs are logged from the
/// closed-form simulator, so no full executor run slows the test down.
fn queries() -> Vec<Query> {
    [
        (256, 256, 64),
        (192, 192, 64),
        (224, 224, 48),
        (256, 192, 64),
    ]
    .iter()
    .enumerate()
    .map(|(i, (x, y, t))| {
        Query::parse_line(&format!(
            "{{\"id\": \"q{i}\", \"device\": \"GTX 980\", \"stencil\": \"Heat2D\", \
             \"size\": [{x}, {y}], \"time\": {t}, \"validate\": true, \"within\": 0.25, \
             \"top_n\": 12, \"timeout_ms\": 0}}"
        ))
        .expect("test query parses")
    })
    .collect()
}

fn serve_all(advisor: &Advisor, qs: &[Query]) -> Vec<advisor::Advice> {
    qs.iter().map(|q| advisor.advise(q)).collect()
}

fn segment_rmse(log: &std::path::Path) -> f64 {
    let per_segment = calib::log_segment_rmse(log).expect("read accuracy log");
    let key = calib::segment_key("GTX 980", "Heat2D", 2);
    per_segment.get(&key).expect("segment logged").1
}

const BIAS: f64 = 3.0;

#[test]
fn fitted_store_halves_the_served_segment_rmse_under_a_citer_bias() {
    let _g = lock_obs();
    let rec = Arc::new(obs::ShardedRecorder::new(obs::Level::Quiet));
    obs::install(rec.clone());
    let dir = temp_dir("loop");
    let pre_log = dir.join("pre.jsonl");
    let post_log = dir.join("post.jsonl");

    // Round 1: serve with a 3x-biased Citer, no calibration. Every
    // answer is uncalibrated (no calib_rev), and the accuracy log fills
    // with pairs whose predictions carry the bias.
    let biased = Advisor::new(AdvisorConfig {
        citer_scale: BIAS,
        accuracy: Some(Arc::new(
            obs::AccuracyLog::open(&pre_log).expect("open pre log"),
        )),
        ..AdvisorConfig::default()
    });
    for a in serve_all(&biased, &queries()) {
        assert!(a.calib_rev.is_none(), "no store loaded, no calib_rev");
    }
    drop(biased);

    // Fit: consume the log into a store; the biased segment must clear
    // the evidence gate and serve a correction.
    let mut store = CalibrationStore::new(calib::DEFAULT_MIN_EVIDENCE);
    let stats = store.consume_log(&pre_log).expect("consume pre log");
    assert!(
        stats.consumed >= calib::DEFAULT_MIN_EVIDENCE,
        "only {} pairs logged",
        stats.consumed
    );
    assert!(store.active_segments() >= 1, "no segment cleared the gate");
    let corr = store
        .correction("GTX 980", "Heat2D", 2)
        .expect("correction for the biased segment");
    assert!(
        corr.citer_scale < 1.0 || corr.mem_scale < 1.0,
        "a 3x overprediction must fit shrinking factors, got {corr:?}"
    );

    // Persist + reload: the round trip must preserve the revision, so
    // answers minted now remain attributable to this exact store.
    let store_path = dir.join("calib_store.jsonl");
    store.save(&store_path).expect("save store");
    let loaded = CalibrationStore::load(&store_path).expect("reload store");
    assert_eq!(loaded.revision(), store.revision());

    // Round 2: same bias, store loaded. Served predictions are now
    // corrected, answers carry the revision, and the same segment's
    // logged RMSE shrinks at least 2x.
    let rev = loaded.revision();
    let corrected = Advisor::new(AdvisorConfig {
        citer_scale: BIAS,
        calib: Some(Arc::new(loaded)),
        accuracy: Some(Arc::new(
            obs::AccuracyLog::open(&post_log).expect("open post log"),
        )),
        ..AdvisorConfig::default()
    });
    for a in serve_all(&corrected, &queries()) {
        assert_eq!(a.calib_rev.as_deref(), Some(rev.as_str()));
    }
    obs::uninstall();

    let pre = segment_rmse(&pre_log);
    let post = segment_rmse(&post_log);
    assert!(
        post <= pre / 2.0,
        "calibration must at least halve the served RMSE: pre {pre:.4}, post {post:.4}"
    );

    // The post log also records the raw (uncorrected) prediction per
    // pair, so the pre-correction error remains observable after the
    // store is live.
    let text = std::fs::read_to_string(&post_log).expect("post log");
    assert!(text.contains("\"raw_predicted_s\":"), "{text}");

    let snap = rec.snapshot();
    assert!(snap.counter("calib.corrections_applied") >= 1);
    assert!(
        snap.gauges
            .iter()
            .any(|(k, _)| k.starts_with("model.rel_err_raw.advisor.")),
        "raw-error gauge must be populated when corrected"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_empty_or_missing_store_leaves_answers_bit_identical() {
    let _g = lock_obs();
    let plain = Advisor::new(AdvisorConfig::default());
    // An empty store (no evidence at all) serves no corrections: every
    // answer must be byte-identical to a calibration-free advisor's.
    // Model-only queries — validation wall-clock times are real
    // measurements and never byte-stable across runs.
    let empty = Advisor::new(AdvisorConfig {
        calib: Some(Arc::new(CalibrationStore::new(calib::DEFAULT_MIN_EVIDENCE))),
        ..AdvisorConfig::default()
    });
    for (x, y) in [(64, 64), (96, 96), (80, 80)] {
        let q = Query::parse_line(&format!(
            "{{\"device\": \"GTX 980\", \"stencil\": \"Heat2D\", \
             \"size\": [{x}, {y}], \"time\": 8}}"
        ))
        .expect("test query parses");
        let a = plain.advise(&q).to_json_line();
        let b = empty.advise(&q).to_json_line();
        assert_eq!(a, b, "empty store changed an answer");
        assert!(!b.contains("calib_rev"));
    }
}
