//! Multi-threaded stress tests of the sharded in-memory cache,
//! mirroring `obs/tests/sharded_concurrency.rs`: N writer threads hammer
//! the cache concurrently, then the merged state is checked against a
//! sequential oracle with exact equality — the cache must only ever
//! return the byte-identical advice that was stored under a key, no
//! matter how the writes interleaved.

use advisor::shard::{ShardedCache, SHARDS};
use advisor::{Advice, Candidate};
use std::collections::HashMap;
use std::sync::Arc;

/// A distinguishable advice per (thread, key): every field that could
/// plausibly be torn or crossed carries the tag.
fn advice(tag: u64) -> Advice {
    Advice {
        id: Some(format!("id-{tag}")),
        device: "GTX 980".into(),
        stencil: "Heat2D".into(),
        size: vec![tag as usize, tag as usize],
        time: tag as usize,
        feasible_points: tag as usize * 3,
        within: 0.1,
        within_points: tag as usize,
        degraded: false,
        calib_rev: None,
        candidates: vec![Candidate {
            rank: 0,
            t_t: tag as usize,
            t_s: vec![tag as usize, 1],
            talg_s: tag as f64 * 0.5, // dyadic: exact across any path
            k: tag as usize,
            mtile_words: tag,
            memory_bound: tag.is_multiple_of(2),
        }],
        validation: None,
    }
}

#[test]
fn concurrent_disjoint_writers_match_a_sequential_oracle() {
    const THREADS: u64 = 8;
    const KEYS_PER_THREAD: u64 = 200;
    let cache = Arc::new(ShardedCache::new((THREADS * KEYS_PER_THREAD) as usize * 2));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for k in 0..KEYS_PER_THREAD {
                    let tag = t * KEYS_PER_THREAD + k;
                    cache.put(format!("key-{tag}"), advice(tag));
                    // Read-back mid-contention: must already be exact.
                    let hit = cache.get(&format!("key-{tag}")).expect("just stored");
                    assert_eq!(hit, advice(tag));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    // Sequential oracle: same puts, single thread, plain HashMap.
    let mut oracle = HashMap::new();
    for tag in 0..THREADS * KEYS_PER_THREAD {
        oracle.insert(format!("key-{tag}"), advice(tag));
    }
    assert_eq!(cache.len(), oracle.len());
    for (key, want) in &oracle {
        let got = cache.get(key).expect("every key survives (ample capacity)");
        assert_eq!(got, *want, "merged state diverges from oracle at {key}");
    }
}

#[test]
fn same_key_contention_never_tears_an_answer() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 300;
    let cache = Arc::new(ShardedCache::new(64));
    // All threads write the same small key set; each key always gets the
    // same value, so any read must see exactly that value — a torn or
    // crossed write would surface as a mismatch.
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for r in 0..ROUNDS {
                    let tag = r % 7;
                    cache.put(format!("hot-{tag}"), advice(tag));
                    if let Some(hit) = cache.get(&format!("hot-{tag}")) {
                        assert_eq!(hit, advice(tag), "torn read on hot-{tag}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    for tag in 0..7 {
        assert_eq!(cache.get(&format!("hot-{tag}")), Some(advice(tag)));
    }
}

#[test]
fn eviction_under_contention_stays_within_the_capacity_bound() {
    const THREADS: u64 = 4;
    const PUTS: u64 = 1000;
    // Tiny capacity: one slot per shard.
    let cache = Arc::new(ShardedCache::new(SHARDS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for k in 0..PUTS {
                    let tag = t * PUTS + k;
                    cache.put(format!("churn-{tag}"), advice(tag));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    assert!(cache.len() <= SHARDS, "len {} > {SHARDS}", cache.len());
    assert!(!cache.is_empty());
}
