//! Ranking invariants of the corrected sweep: whatever positive factors
//! a calibration store serves, [`model_sweep_with`] must evaluate the
//! same Eqn-31 candidate set in the same order, its ranking helpers must
//! stay internally consistent, and the no-correction / identity paths
//! must reproduce the uncorrected sweep bit for bit.

use gpu_sim::DeviceConfig;
use hhc_tiling::TileSizes;
use proptest::prelude::*;
use stencil_core::{ProblemSize, StencilDim};
use tile_opt::space::{feasible_tiles, SpaceConfig};
use tile_opt::{model_sweep, model_sweep_with, talg_min, within_fraction};
use time_model::{Correction, MeasuredParams, ModelParams};

fn params() -> ModelParams {
    ModelParams::from_measured(
        &DeviceConfig::gtx980(),
        &MeasuredParams::paper_gtx980(3.39e-8),
    )
}

fn space() -> Vec<TileSizes> {
    feasible_tiles(
        &DeviceConfig::gtx980(),
        StencilDim::D2,
        &SpaceConfig::default(),
    )
}

/// Positive, finite factors spanning past the fitter's clamp range
/// (2^-5 .. 2^5 in tenth-of-an-octave steps).
fn factor() -> impl Strategy<Value = f64> {
    (-50i32..=50).prop_map(|e| (e as f64 / 10.0).exp2())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any positive correction: the candidate set and its order
    /// are the uncorrected sweep's (the Eqn-31 space is geometry, which
    /// corrections never touch), each entry equals a direct
    /// `predict_with` call bit for bit, and the ranking helpers agree
    /// with the corrected times they are fed.
    #[test]
    fn corrected_sweep_preserves_ranking_invariants(
        citer_scale in factor(), mem_scale in factor(), s in 8usize..11
    ) {
        let p = params();
        let size = ProblemSize::new_2d(1 << s, 1 << s, 512);
        let tiles = space();
        let corr = Correction { citer_scale, mem_scale };
        let raw = model_sweep(&p, &size, &tiles);
        let cal = model_sweep_with(&p, &size, &tiles, Some(&corr));
        prop_assert_eq!(cal.len(), raw.len());
        for (i, ((ct, cp), (rt, _))) in cal.iter().zip(&raw).enumerate() {
            prop_assert_eq!(ct, rt, "candidate order changed at {}", i);
            let direct = time_model::predict_with(&p, &size, ct, Some(&corr));
            prop_assert_eq!(cp.talg.to_bits(), direct.talg.to_bits());
            prop_assert_eq!(
                (cp.k, cp.nw, cp.w, cp.mtile_words),
                (direct.k, direct.nw, direct.w, direct.mtile_words)
            );
        }
        // talg_min really is the minimum of the corrected sweep, and the
        // within-band set contains it, is sorted, and respects the band.
        let (tmin, best) = talg_min(&cal).unwrap();
        prop_assert!(cal.iter().all(|(_, p)| p.talg >= best.talg));
        let within = within_fraction(&cal, 0.10);
        prop_assert!(!within.is_empty());
        prop_assert_eq!(within[0].0, tmin);
        prop_assert!(within.windows(2).all(|w| w[0].1.talg <= w[1].1.talg));
        prop_assert!(within.iter().all(|(_, p)| p.talg <= best.talg * 1.10));
    }

    /// `None` and `Some(&IDENTITY)` sweeps are bit-identical to the
    /// uncorrected sweep — candidate for candidate, field for field.
    #[test]
    fn identity_sweep_is_bit_identical(s in 8usize..11) {
        let p = params();
        let size = ProblemSize::new_2d(1 << s, 1 << s, 512);
        let tiles = space();
        let raw = model_sweep(&p, &size, &tiles);
        for cal in [
            model_sweep_with(&p, &size, &tiles, None),
            model_sweep_with(&p, &size, &tiles, Some(&Correction::IDENTITY)),
        ] {
            prop_assert_eq!(cal.len(), raw.len());
            for ((ct, cp), (rt, rp)) in cal.iter().zip(&raw) {
                prop_assert_eq!(ct, rt);
                prop_assert_eq!(cp.talg.to_bits(), rp.talg.to_bits());
                prop_assert_eq!(cp.m_prime.to_bits(), rp.m_prime.to_bits());
                prop_assert_eq!(cp.c.to_bits(), rp.c.to_bits());
                prop_assert_eq!(
                    (cp.k, cp.nw, cp.w, cp.mtile_words),
                    (rp.k, rp.nw, rp.w, rp.mtile_words)
                );
            }
        }
    }
}
