//! Tile-size selection strategies — the comparison of the paper's
//! Figure 6 and the candidate-set machinery of Figure 5.
//!
//! * **HhcDefault** — the compiler's stock tile/thread configuration
//!   (no tuning at all);
//! * **Baseline** — the paper's Section 5.1 methodology: 85 tile-size
//!   combinations that maximize the shared-memory footprint subject to
//!   capacity (plus hyperthreading variants), each with 10 thread
//!   counts → 850 measured data points, best taken;
//! * **TalgMin** — the raw predicted optimum of the model sweep;
//! * **Within10** — measure every point whose prediction is within 10 %
//!   of `T_alg min` (the paper's < 200 points) and take the best;
//! * **Exhaustive** — measure the entire feasible space (the paper calls
//!   this impractical on hardware; the simulator can afford it).
//!
//! Thread counts are the model's blind spot (paper Section 7); following
//! the paper, the model-driven strategies reuse the *empirically
//! predicted* thread count — the one the best baseline point used.

use crate::space::{feasible_space, feasible_tiles, SpaceConfig};
use crate::sweep::{model_sweep, talg_min, within_fraction};
use gpu_sim::{simulate, DeviceConfig, SimReport, SimWorkload, Workload};
use hhc_tiling::{LaunchConfig, TileSizes, TilingPlan};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use stencil_core::{reference, ProblemSize, StencilDim, StencilSpec};
use time_model::{predict, ModelParams};

/// One configuration the HHC compiler would be invoked with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataPoint {
    /// Tile sizes.
    pub tiles: TileSizes,
    /// Threads per block.
    pub launch: LaunchConfig,
}

/// A data point with its model prediction and machine measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluated {
    /// The configuration.
    pub point: DataPoint,
    /// Model-predicted time `T_alg` (s).
    pub predicted: f64,
    /// Machine-measured time `T_exec` (s); `None` if the configuration
    /// cannot launch (e.g. per-block shared-memory overflow).
    pub measured: Option<f64>,
    /// Achieved GFLOPS/s for the measured time.
    pub gflops: Option<f64>,
}

/// The strategies compared in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Stock compiler configuration.
    HhcDefault,
    /// Best of the 850 footprint-maximizing baseline points.
    Baseline,
    /// The raw predicted optimum.
    TalgMin,
    /// Best measured point within 10 % of the predicted optimum.
    Within10,
    /// Best measured point of the whole feasible space.
    Exhaustive,
}

impl Strategy {
    /// Display name matching the paper's Figure 6 legend.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::HhcDefault => "HHC",
            Strategy::Baseline => "Baseline",
            Strategy::TalgMin => "Talg min",
            Strategy::Within10 => "Within 10% of Talg min",
            Strategy::Exhaustive => "Exhaustive",
        }
    }
}

/// The chosen configuration and its performance, for one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Which strategy produced this.
    pub strategy: Strategy,
    /// The chosen point with its numbers.
    pub chosen: Evaluated,
    /// How many configurations the strategy *measured* to get there
    /// (the paper's practicality argument: Within10 measures < 200,
    /// Exhaustive measures everything). Unchanged by memoization: a
    /// cache-served point still counts as measured by this strategy.
    pub measured_count: usize,
    /// How many of those evaluations were served from the shared
    /// [`EvalCache`] instead of re-simulated.
    pub cache_hits: usize,
}

/// A memoization table for [`evaluate_points`], shared by every strategy
/// run against one [`StrategyContext`].
///
/// Evaluation is a pure function of the [`DataPoint`] (model prediction +
/// deterministic simulation), so serving a repeat point from the cache is
/// bit-identical to recomputing it — strategy outcomes cannot change, only
/// the work drops. Thread-safe: lookups and inserts take a short mutex;
/// hit accounting is atomic.
#[derive(Default)]
pub struct EvalCache {
    map: Mutex<HashMap<DataPoint, Evaluated>>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl EvalCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups so far (hits + evaluations).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Distinct configurations currently memoized.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

/// Everything needed to run the selection strategies for one
/// [`Workload`] experiment.
pub struct StrategyContext<'a> {
    /// The workload under study (device + stencil + size; the tile and
    /// launch members are the stock configuration the strategies start
    /// from).
    pub workload: &'a Workload,
    /// Measured model parameters for this (device, stencil).
    pub params: &'a ModelParams,
    /// The elaborated stencil specification.
    pub spec: StencilSpec,
    /// Feasible-space bounds.
    pub space: &'a SpaceConfig,
    /// Shared evaluation memo: strategies of one experiment often revisit
    /// the same configurations (e.g. the `T_alg` minimum also appears in
    /// the within-10 % set and the exhaustive sweep).
    pub cache: EvalCache,
}

impl<'a> StrategyContext<'a> {
    /// Build a context (with a cold cache) for one workload.
    pub fn new(workload: &'a Workload, params: &'a ModelParams, space: &'a SpaceConfig) -> Self {
        StrategyContext {
            workload,
            params,
            spec: workload.spec(),
            space,
            cache: EvalCache::new(),
        }
    }

    /// The workload's device.
    pub fn device(&self) -> &DeviceConfig {
        &self.workload.device
    }

    /// The workload's problem size.
    pub fn size(&self) -> &ProblemSize {
        &self.workload.size
    }

    /// The workload's dimensionality.
    pub fn dim(&self) -> StencilDim {
        self.workload.dim()
    }
}

/// The ten thread-count configurations explored per tile size
/// (paper Section 5.1: "for each of them, we explore 10 different
/// values of `n_thr,i`") — [`LaunchConfig::candidates`].
pub fn thread_counts(dim: StencilDim) -> Vec<LaunchConfig> {
    LaunchConfig::candidates(dim)
}

/// The stock compiler configuration (PPCG-style 32-point space tiles).
pub fn hhc_default(dim: StencilDim) -> DataPoint {
    DataPoint {
        tiles: TileSizes::hhc_default(dim),
        launch: LaunchConfig::hhc_default(dim),
    }
}

/// The paper's baseline tile-size set: 85 combinations per experiment
/// built with the strategies of Section 5.1 — "maximize the memory
/// footprint of the tile subject to capacity constraints", guided by the
/// HHT paper's suggestion to favor high compute-to-IO-ratio tiles — plus
/// points that admit higher hyperthreading factors.
///
/// Like the paper's hand-constructed set, candidates come from a *nice*
/// grid (round extents a practitioner would write down), not from the
/// fine-grained space the model sweep explores; the paper notes its
/// best predicted tile "was not explored in our set of baseline tile
/// sizes". Deterministic: the 45 largest-footprint nice tiles, then the
/// 10 largest below each of `M_SM/3`, `M_SM/4`, `M_SM/6`, `M_SM/8`.
pub fn baseline_tiles(
    device: &DeviceConfig,
    dim: StencilDim,
    _cfg: &SpaceConfig,
) -> Vec<TileSizes> {
    let nice = SpaceConfig {
        t_t: vec![4, 8, 12, 16, 24, 32, 48],
        t_s1: vec![4, 8, 16, 24, 32, 48, 64],
        t_s_mid: vec![4, 8, 16, 32],
        t_s_inner: vec![32, 64, 128, 256, 384, 512],
    };
    let mut all = feasible_tiles(device, dim, &nice);
    all.sort_by_key(|t| std::cmp::Reverse((crate::space::mtile_words(dim, t), t.t_t, t.t_s)));
    let mut out: Vec<TileSizes> = Vec::with_capacity(85);
    let push_unique = |out: &mut Vec<TileSizes>, t: TileSizes| {
        if !out.contains(&t) {
            out.push(t);
        }
    };
    for t in all.iter().take(45) {
        push_unique(&mut out, *t);
    }
    for div in [3u64, 4] {
        let cap = device.shared_mem_words / div;
        let mut taken = 0;
        for t in all
            .iter()
            .filter(|t| crate::space::mtile_words(dim, t) <= cap)
        {
            push_unique(&mut out, *t);
            taken += 1;
            if taken == 20 {
                break;
            }
        }
    }
    // Top up to the paper's 85 combinations with the next-largest tiles
    // (the slab picks overlap the top-footprint picks for some shapes).
    for t in all.iter() {
        if out.len() >= 85 {
            break;
        }
        push_unique(&mut out, *t);
    }
    out.truncate(85);
    out
}

/// The paper's empirical threads-per-block predictor (Section 7) —
/// [`LaunchConfig::empirical`].
pub fn empirical_launch(dim: StencilDim, tiles: &TileSizes) -> LaunchConfig {
    LaunchConfig::empirical(dim, tiles)
}

/// The full 850-point baseline set (85 tiles × 10 thread counts).
pub fn baseline_points(
    device: &DeviceConfig,
    dim: StencilDim,
    cfg: &SpaceConfig,
) -> Vec<DataPoint> {
    let tiles = baseline_tiles(device, dim, cfg);
    let launches = thread_counts(dim);
    let mut out = Vec::with_capacity(tiles.len() * launches.len());
    for t in &tiles {
        for l in &launches {
            out.push(DataPoint {
                tiles: *t,
                launch: *l,
            });
        }
    }
    out
}

/// Simulate one configuration; `None` if the plan or launch is invalid.
pub fn simulate_point(
    device: &DeviceConfig,
    spec: &StencilSpec,
    size: &ProblemSize,
    point: &DataPoint,
) -> Option<SimReport> {
    let plan = TilingPlan::build(spec, size, point.tiles, point.launch).ok()?;
    simulate(device, &SimWorkload::from_plan(&plan)).ok()
}

/// Evaluate (model + machine) a set of points in parallel, memoized
/// through the context's [`EvalCache`].
///
/// Results are returned in input order and are identical to an uncached
/// evaluation (the evaluation is a pure function of the point); only the
/// already-seen points skip the simulator.
pub fn evaluate_points(ctx: &StrategyContext<'_>, points: &[DataPoint]) -> Vec<Evaluated> {
    let flops = reference::total_flops(&ctx.spec, ctx.size());
    // Resolve prior results under one short lock…
    let cached: Vec<Option<Evaluated>> = {
        let map = ctx.cache.map.lock();
        points.iter().map(|p| map.get(p).copied()).collect()
    };
    let hits = cached.iter().flatten().count();
    ctx.cache.hits.fetch_add(hits as u64, Ordering::Relaxed);
    ctx.cache
        .lookups
        .fetch_add(points.len() as u64, Ordering::Relaxed);

    // …evaluate only the misses, in parallel…
    let misses: Vec<DataPoint> = points
        .iter()
        .zip(&cached)
        .filter_map(|(p, c)| c.is_none().then_some(*p))
        .collect();
    if obs::active() {
        obs::counter("opt.eval_lookups", points.len() as u64);
        obs::counter("opt.eval_cache_hits", hits as u64);
        obs::counter("opt.eval_simulated", misses.len() as u64);
    }
    let computed: Vec<Evaluated> = misses
        .par_iter()
        .map(|p| {
            let predicted = predict(ctx.params, ctx.size(), &p.tiles).talg;
            let measured =
                simulate_point(ctx.device(), &ctx.spec, ctx.size(), p).map(|r| r.total_time);
            Evaluated {
                point: *p,
                predicted,
                measured,
                gflops: measured.map(|t| flops as f64 / t / 1e9),
            }
        })
        .collect();
    {
        let mut map = ctx.cache.map.lock();
        for e in &computed {
            map.insert(e.point, *e);
        }
    }

    // …and splice hits and fresh evaluations back in input order.
    let mut fresh = computed.into_iter();
    points
        .iter()
        .zip(cached)
        .map(|(_, c)| c.unwrap_or_else(|| fresh.next().expect("one result per miss")))
        .collect()
}

/// The best (lowest measured time) of a set of evaluations.
pub fn best_measured(evals: &[Evaluated]) -> Option<Evaluated> {
    evals
        .iter()
        .filter(|e| e.measured.is_some())
        .min_by(|a, b| {
            a.measured
                .unwrap()
                .total_cmp(&b.measured.unwrap())
                .then_with(|| {
                    (a.point.tiles.t_t, a.point.tiles.t_s, a.point.launch.threads).cmp(&(
                        b.point.tiles.t_t,
                        b.point.tiles.t_s,
                        b.point.launch.threads,
                    ))
                })
        })
        .copied()
}

/// The full study of one experiment: baseline set, model sweep,
/// within-10 % candidates, and every strategy outcome. This is the data
/// behind Figures 5 and 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Study {
    /// All 850 baseline evaluations (the scatter of Figure 5).
    pub baseline: Vec<Evaluated>,
    /// The within-10 % candidate evaluations (Figure 5's predicted-
    /// optimal points).
    pub within: Vec<Evaluated>,
    /// One outcome per strategy, in Figure 6 order.
    pub outcomes: Vec<StrategyOutcome>,
}

/// Run every strategy for one experiment. `exhaustive` additionally
/// measures the whole feasible space (set `false` for large problems if
/// time matters; the simulator usually affords it).
pub fn study(ctx: &StrategyContext<'_>, exhaustive: bool) -> Study {
    let dim = ctx.dim();
    let _study_span = obs::span("opt.study", "optimizer");
    // Per-strategy cache accounting: strategies run sequentially, so the
    // delta of the shared counter attributes hits to the right one.
    let mut hits_mark = ctx.cache.hits();
    let mut take_hits = |cache: &EvalCache| {
        let now = cache.hits();
        let delta = (now - hits_mark) as usize;
        hits_mark = now;
        delta
    };
    // Time one strategy: a span on the optimizer track plus a
    // per-strategy wall-time histogram (both free when no recorder is
    // installed).
    fn timed<T>(span: &'static str, hist: &'static str, f: impl FnOnce() -> T) -> T {
        let _s = obs::span(span, "optimizer");
        let t0 = std::time::Instant::now();
        let r = f();
        obs::histogram(hist, t0.elapsed().as_secs_f64());
        r
    }

    // --- HHC default ---
    let hhc = timed("opt.strategy.hhc", "opt.wall_s.hhc", || {
        evaluate_points(ctx, &[hhc_default(dim)])
    });
    let hhc_hits = take_hits(&ctx.cache);

    // --- Baseline: 850 measured points ---
    let baseline = timed("opt.strategy.baseline", "opt.wall_s.baseline", || {
        let pts = baseline_points(ctx.device(), dim, ctx.space);
        evaluate_points(ctx, &pts)
    });
    let baseline_hits = take_hits(&ctx.cache);
    let baseline_best = best_measured(&baseline);

    // --- Model sweep over the feasible space ---
    let (space, sweep) = timed("opt.model_sweep", "opt.wall_s.sweep", || {
        let space = feasible_space(ctx.workload, ctx.space);
        let sweep = model_sweep(ctx.params, ctx.size(), &space);
        (space, sweep)
    });

    // --- Talg min ---
    let talg_min_eval = timed("opt.strategy.talg_min", "opt.wall_s.talg_min", || {
        talg_min(&sweep).map(|(tiles, _)| {
            evaluate_points(
                ctx,
                &[DataPoint {
                    tiles,
                    launch: empirical_launch(dim, &tiles),
                }],
            )[0]
        })
    });
    let talg_hits = take_hits(&ctx.cache);

    // --- Within 10 % of Talg min ---
    let within = timed("opt.strategy.within10", "opt.wall_s.within10", || {
        let pts: Vec<DataPoint> = within_fraction(&sweep, 0.10)
            .into_iter()
            .map(|(tiles, _)| DataPoint {
                tiles,
                launch: empirical_launch(dim, &tiles),
            })
            .collect();
        evaluate_points(ctx, &pts)
    });
    let within_hits = take_hits(&ctx.cache);
    let within_best = best_measured(&within);

    // --- Exhaustive (optional) ---
    let exhaustive_best = if exhaustive {
        timed("opt.strategy.exhaustive", "opt.wall_s.exhaustive", || {
            let pts: Vec<DataPoint> = space
                .iter()
                .map(|t| DataPoint {
                    tiles: *t,
                    launch: empirical_launch(dim, t),
                })
                .collect();
            let evals = evaluate_points(ctx, &pts);
            best_measured(&evals).map(|b| (b, evals.len()))
        })
    } else {
        None
    };
    let exhaustive_hits = take_hits(&ctx.cache);

    let mut outcomes = Vec::new();
    if let Some(h) = hhc.first().copied() {
        outcomes.push(StrategyOutcome {
            strategy: Strategy::HhcDefault,
            chosen: h,
            measured_count: 1,
            cache_hits: hhc_hits,
        });
    }
    if let Some(b) = baseline_best {
        outcomes.push(StrategyOutcome {
            strategy: Strategy::Baseline,
            chosen: b,
            measured_count: baseline.len(),
            cache_hits: baseline_hits,
        });
    }
    if let Some(t) = talg_min_eval {
        outcomes.push(StrategyOutcome {
            strategy: Strategy::TalgMin,
            chosen: t,
            measured_count: 1,
            cache_hits: talg_hits,
        });
    }
    if let Some(w) = within_best {
        outcomes.push(StrategyOutcome {
            strategy: Strategy::Within10,
            chosen: w,
            measured_count: within.len(),
            cache_hits: within_hits,
        });
    }
    if let Some((e, n)) = exhaustive_best {
        outcomes.push(StrategyOutcome {
            strategy: Strategy::Exhaustive,
            chosen: e,
            measured_count: n,
            cache_hits: exhaustive_hits,
        });
    }

    if obs::enabled(obs::Level::Info) {
        for o in &outcomes {
            obs::event(
                obs::Level::Info,
                "opt.outcome",
                &[
                    ("strategy", o.strategy.name().into()),
                    ("measured_count", o.measured_count.into()),
                    ("cache_hits", o.cache_hits.into()),
                    ("predicted_s", o.chosen.predicted.into()),
                    // NaN renders as null in the JSONL export (no
                    // measurement: the configuration failed to launch).
                    ("measured_s", o.chosen.measured.unwrap_or(f64::NAN).into()),
                ],
            );
        }
    }

    Study {
        baseline,
        within,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::StencilKind;

    #[test]
    fn baseline_set_has_85_tiles_and_850_points() {
        let d = DeviceConfig::gtx980();
        let tiles = baseline_tiles(&d, StencilDim::D2, &SpaceConfig::default());
        assert_eq!(tiles.len(), 85, "baseline tile count");
        let pts = baseline_points(&d, StencilDim::D2, &SpaceConfig::default());
        assert_eq!(pts.len(), 850);
    }

    #[test]
    fn thread_counts_are_ten_per_dim() {
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            assert_eq!(thread_counts(dim).len(), 10, "{dim:?}");
        }
    }

    #[test]
    fn study_produces_ordered_outcomes() {
        let device = DeviceConfig::gtx980();
        let workload = Workload::new(
            device.clone(),
            StencilKind::Jacobi2D,
            ProblemSize::new_2d(512, 512, 128),
        )
        .unwrap();
        // Use *measured* parameters, as the real pipeline does — the
        // model's candidate set is only meaningful with a Citer that
        // came from the machine.
        let measured = microbench::measured_params_sampled(&device, &workload.stencil, 16, 3);
        let params = ModelParams::from_measured(&device, &measured);
        let space = SpaceConfig::default();
        let ctx = StrategyContext::new(&workload, &params, &space);
        let study = study(&ctx, false);

        assert!(study.outcomes.len() >= 4);
        let get = |s: Strategy| {
            study
                .outcomes
                .iter()
                .find(|o| o.strategy == s)
                .unwrap_or_else(|| panic!("missing {s:?}"))
        };
        let baseline = get(Strategy::Baseline);
        let within = get(Strategy::Within10);
        // Within10 can only improve on (or match) its own candidate set;
        // and the paper's headline: Within10 beats or matches Baseline.
        let wb = within.chosen.measured.unwrap();
        let bb = baseline.chosen.measured.unwrap();
        // At this small, boundary-dominated problem size the model-driven
        // set must at least be competitive; the paper-scale behaviour
        // (Within10 matching or beating Baseline) is validated by the
        // experiments crate at the paper's sizes.
        assert!(
            wb <= bb * 1.25,
            "within10 {wb:e} should be <= ~baseline {bb:e}"
        );
        // Within10 measures few points (paper: < 200).
        assert!(within.measured_count < 200);
        assert_eq!(baseline.measured_count, 850);
    }

    #[test]
    fn eval_cache_serves_repeats_identically() {
        let device = DeviceConfig::gtx980();
        let workload = Workload::new(
            device.clone(),
            StencilKind::Jacobi2D,
            ProblemSize::new_2d(256, 256, 64),
        )
        .unwrap();
        let measured = microbench::measured_params_sampled(&device, &workload.stencil, 16, 3);
        let params = ModelParams::from_measured(&device, &measured);
        let space = SpaceConfig::default();
        let ctx = StrategyContext::new(&workload, &params, &space);
        let pts: Vec<DataPoint> = baseline_points(&device, workload.dim(), &space)
            .into_iter()
            .take(40)
            .collect();
        let cold = evaluate_points(&ctx, &pts);
        assert_eq!(ctx.cache.hits(), 0);
        assert_eq!(ctx.cache.len(), pts.len());
        let warm = evaluate_points(&ctx, &pts);
        assert_eq!(ctx.cache.hits() as usize, pts.len());
        assert_eq!(ctx.cache.lookups() as usize, 2 * pts.len());
        assert_eq!(cold, warm, "cache-served results must be identical");
        // A fresh context (cold cache) reproduces the same values:
        // evaluation is a pure function of the point.
        let ctx2 = StrategyContext::new(&workload, &params, &space);
        assert_eq!(evaluate_points(&ctx2, &pts), cold);
    }

    #[test]
    fn study_outcomes_unchanged_by_warm_cache() {
        let device = DeviceConfig::gtx980();
        let workload = Workload::new(
            device.clone(),
            StencilKind::Jacobi2D,
            ProblemSize::new_2d(256, 256, 64),
        )
        .unwrap();
        let measured = microbench::measured_params_sampled(&device, &workload.stencil, 16, 3);
        let params = ModelParams::from_measured(&device, &measured);
        let space = SpaceConfig::default();
        let ctx = StrategyContext::new(&workload, &params, &space);
        let first = study(&ctx, false);
        let lookups_cold = ctx.cache.lookups();
        // Re-running the whole study against the now-warm cache must pick
        // the same configurations with the same numbers and the same
        // measured_count per strategy — memoization is observationally
        // neutral apart from `cache_hits`.
        let second = study(&ctx, false);
        assert_eq!(ctx.cache.lookups(), 2 * lookups_cold);
        assert_eq!(first.outcomes.len(), second.outcomes.len());
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.chosen, b.chosen);
            assert_eq!(a.measured_count, b.measured_count);
            assert_eq!(
                b.cache_hits, b.measured_count,
                "{:?}: warm rerun should be all hits",
                b.strategy
            );
        }
    }

    #[test]
    fn best_measured_skips_failures() {
        let ok = Evaluated {
            point: DataPoint {
                tiles: TileSizes::new_2d(4, 8, 32),
                launch: LaunchConfig::new_2d(1, 128),
            },
            predicted: 1.0,
            measured: Some(2.0),
            gflops: Some(1.0),
        };
        let fail = Evaluated {
            measured: None,
            gflops: None,
            ..ok
        };
        assert_eq!(best_measured(&[fail, ok]).unwrap().measured, Some(2.0));
        assert!(best_measured(&[fail]).is_none());
    }

    #[test]
    fn baseline_tiles_are_all_feasible() {
        let d = DeviceConfig::gtx980();
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            for t in baseline_tiles(&d, dim, &SpaceConfig::default()) {
                assert!(crate::space::is_feasible(&d, dim, &t), "{dim:?} {t:?}");
            }
        }
    }

    #[test]
    fn thread_counts_are_valid_launches() {
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            for l in thread_counts(dim) {
                assert!(l.validate(dim).is_ok(), "{dim:?} {l:?}");
            }
        }
    }

    #[test]
    fn empirical_launch_is_warp_aligned_for_aligned_tiles() {
        for tiles in [TileSizes::new_2d(8, 8, 128), TileSizes::new_2d(4, 16, 384)] {
            let l = empirical_launch(StencilDim::D2, &tiles);
            assert_eq!(l.threads[1] % 32, 0);
            assert!(l.validate(StencilDim::D2).is_ok());
        }
        let l3 = empirical_launch(StencilDim::D3, &TileSizes::new_3d(8, 4, 4, 64));
        assert!(l3.validate(StencilDim::D3).is_ok());
        assert_eq!(l3.threads[2] % 32, 0);
    }

    #[test]
    fn hhc_default_is_feasible_everywhere() {
        let d = DeviceConfig::gtx980();
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            let p = hhc_default(dim);
            assert!(crate::space::is_feasible(&d, dim, &p.tiles), "{dim:?}");
        }
    }
}
