//! # tile-opt
//!
//! Model-driven tile-size selection (paper Section 6).
//!
//! The optimization problem (Eqn 31) minimizes `T_alg` over tile sizes
//! subject to the shared-memory capacity constraints, even `t_T`, and a
//! warp-aligned innermost extent. It is non-linear, non-convex, and
//! integer — the paper found off-the-shelf solvers (Bonmin et al.)
//! disappointing and instead *exhaustively evaluates the analytical
//! model over the feasible space* (it is cheap), keeps every point
//! within 10 % of the predicted minimum (fewer than 200 points), and
//! measures only those. This crate implements that pipeline:
//!
//! * [`space`] — enumeration of the feasible space of Eqn 31;
//! * [`sweep`] — parallel (rayon) evaluation of `T_alg` over the space,
//!   the predicted minimum, and the within-δ candidate set;
//! * [`strategy`] — the tile-size selection strategies compared in the
//!   paper's Figure 6: HHC defaults, the footprint-maximizing *Baseline*
//!   of Section 5.1, the raw `T_alg min` point, *best within 10 % of
//!   `T_alg min`*, and exhaustive search.

pub mod run;
pub mod solver;
pub mod space;
pub mod strategy;
pub mod sweep;

pub use run::{
    run_candidates, run_candidates_until, CandidateReport, CandidateRun, SkipReason,
    SkippedCandidate,
};
pub use solver::{coordinate_descent, simulated_annealing, SolverResult};
pub use space::{
    coordinate_axes, feasible_space, feasible_tiles, feasible_tiles_r, is_feasible, is_feasible_r,
    SpaceConfig,
};
pub use strategy::{
    baseline_points, best_measured, evaluate_points, simulate_point, study, thread_counts,
    DataPoint, EvalCache, Evaluated, Strategy, StrategyContext, StrategyOutcome, Study,
};
pub use sweep::{model_sweep, model_sweep_spec, model_sweep_with, talg_min, within_fraction};
