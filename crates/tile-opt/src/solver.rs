//! Heuristic non-linear solvers over the model — the stand-in for the
//! paper's AMPL/Bonmin experiments (Section 6.1).
//!
//! The paper encoded the optimization problem (Eqn 31) in AMPL and tried
//! several non-linear solvers; "the best results were obtained using the
//! open-source solver Bonmin", yet the outcome was "somewhat
//! disappointing" — the problem is non-convex, integer, and full of
//! ceiling discontinuities, so heuristic solvers return good-but-not-
//! optimal points and exhaustive evaluation of the (cheap) model wins.
//!
//! This module reproduces that comparison with two classic heuristics,
//! both deterministic for a given seed:
//!
//! * [`coordinate_descent`] — cycle through the tile-size coordinates,
//!   moving to the best neighboring candidate value until a fixed point;
//! * [`simulated_annealing`] — random restarts + geometric cooling over
//!   the same neighborhood.
//!
//! The `--ablation` experiment compares their found minima against the
//! exhaustive sweep's `T_alg min` over many instances.

use crate::space::{coordinate_axes, is_feasible, SpaceConfig};
use gpu_sim::DeviceConfig;
use hhc_tiling::TileSizes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::{ProblemSize, StencilDim};
use time_model::{predict, ModelParams};

/// Outcome of a heuristic solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverResult {
    /// The tile sizes the solver settled on.
    pub tiles: TileSizes,
    /// Their predicted time.
    pub talg: f64,
    /// Model evaluations spent.
    pub evaluations: usize,
}

fn make_tiles(dim: StencilDim, coords: &[usize]) -> TileSizes {
    TileSizes::from_coords(dim, coords).expect("solver coordinates match the rank")
}

/// Objective: `T_alg`, or `+inf` when infeasible.
fn objective(
    device: &DeviceConfig,
    params: &ModelParams,
    size: &ProblemSize,
    dim: StencilDim,
    coords: &[usize],
    evals: &mut usize,
) -> f64 {
    let tiles = make_tiles(dim, coords);
    if !is_feasible(device, dim, &tiles) {
        return f64::INFINITY;
    }
    *evals += 1;
    predict(params, size, &tiles).talg
}

/// Coordinate descent from a starting point: repeatedly set each
/// coordinate to its best candidate value with the others fixed, until
/// no coordinate moves.
pub fn coordinate_descent(
    device: &DeviceConfig,
    params: &ModelParams,
    size: &ProblemSize,
    cfg: &SpaceConfig,
    start: &TileSizes,
) -> SolverResult {
    let dim = size.dim;
    // The same candidate-value axes the exhaustive sweep enumerates, so
    // the comparison is apples-to-apples.
    let values = coordinate_axes(cfg, dim);
    let mut coords: Vec<usize> = start.coords(dim);
    let mut evals = 0usize;
    let mut best = objective(device, params, size, dim, &coords, &mut evals);
    loop {
        let mut moved = false;
        for d in 0..coords.len() {
            let saved = coords[d];
            let mut best_v = saved;
            for &v in values[d] {
                coords[d] = v;
                let f = objective(device, params, size, dim, &coords, &mut evals);
                if f < best {
                    best = f;
                    best_v = v;
                }
            }
            coords[d] = best_v;
            moved |= best_v != saved;
        }
        if !moved {
            break;
        }
    }
    SolverResult {
        tiles: make_tiles(dim, &coords),
        talg: best,
        evaluations: evals,
    }
}

/// Simulated annealing with `restarts` random starts and a fixed
/// move/cooling budget per start. Deterministic for a given `seed`.
pub fn simulated_annealing(
    device: &DeviceConfig,
    params: &ModelParams,
    size: &ProblemSize,
    cfg: &SpaceConfig,
    restarts: usize,
    steps: usize,
    seed: u64,
) -> SolverResult {
    let dim = size.dim;
    let values = coordinate_axes(cfg, dim);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evals = 0usize;
    let mut global_best: Option<(Vec<usize>, f64)> = None;

    for restart in 0..restarts.max(1) {
        // First restart starts from the smallest extents (feasible for
        // any device); later restarts start randomly — a random draw in
        // the 3D space is frequently infeasible, which is part of why
        // the paper found off-the-shelf solvers awkward here.
        let mut coords: Vec<usize> = if restart == 0 {
            values.iter().map(|vs| vs[0]).collect()
        } else {
            values
                .iter()
                .map(|vs| vs[rng.gen_range(0..vs.len())])
                .collect()
        };
        let mut f = objective(device, params, size, dim, &coords, &mut evals);
        let mut temp = 1.0f64;
        for _ in 0..steps {
            // Neighbor: bump one coordinate to an adjacent candidate.
            let d = rng.gen_range(0..coords.len());
            let idx = values[d].iter().position(|&v| v == coords[d]).unwrap_or(0);
            let nidx = if rng.gen_bool(0.5) {
                idx.saturating_sub(1)
            } else {
                (idx + 1).min(values[d].len() - 1)
            };
            let saved = coords[d];
            coords[d] = values[d][nidx];
            let nf = objective(device, params, size, dim, &coords, &mut evals);
            let accept = nf < f
                || (nf.is_finite()
                    && f.is_finite()
                    && rng.gen_bool((-(nf - f) / (f * temp)).exp().clamp(0.0, 1.0)));
            if accept {
                f = nf;
            } else {
                coords[d] = saved;
            }
            temp *= 0.95;
        }
        if f.is_finite() && global_best.as_ref().is_none_or(|(_, g)| f < *g) {
            global_best = Some((coords.clone(), f));
        }
    }
    let (coords, talg) = global_best.expect("at least one feasible start");
    SolverResult {
        tiles: make_tiles(dim, &coords),
        talg,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::feasible_tiles;
    use crate::sweep::{model_sweep, talg_min};
    use time_model::MeasuredParams;

    fn setup() -> (DeviceConfig, ModelParams, ProblemSize, SpaceConfig) {
        let device = DeviceConfig::gtx980();
        let params = ModelParams::from_measured(&device, &MeasuredParams::paper_gtx980(3.39e-8));
        (
            device,
            params,
            ProblemSize::new_2d(2048, 2048, 512),
            SpaceConfig::default(),
        )
    }

    #[test]
    fn coordinate_descent_finds_feasible_local_optimum() {
        let (device, params, size, cfg) = setup();
        let start = TileSizes::new_2d(8, 8, 64);
        let r = coordinate_descent(&device, &params, &size, &cfg, &start);
        assert!(r.talg.is_finite());
        assert!(is_feasible(&device, size.dim, &r.tiles));
        // A local optimum: never worse than its start.
        let f0 = predict(&params, &size, &start).talg;
        assert!(r.talg <= f0);
    }

    #[test]
    fn annealing_is_deterministic_for_seed() {
        let (device, params, size, cfg) = setup();
        let a = simulated_annealing(&device, &params, &size, &cfg, 3, 60, 11);
        let b = simulated_annealing(&device, &params, &size, &cfg, 3, 60, 11);
        assert_eq!(a.tiles, b.tiles);
        assert_eq!(a.talg.to_bits(), b.talg.to_bits());
    }

    #[test]
    fn heuristics_near_but_rarely_at_the_exhaustive_optimum() {
        // The paper's §6.1 finding: heuristic solvers give relatively
        // good but suboptimal answers; the exhaustive model sweep is the
        // reliable tool.
        let (device, params, size, cfg) = setup();
        let space = feasible_tiles(&device, size.dim, &cfg);
        let sweep = model_sweep(&params, &size, &space);
        let (_, best) = talg_min(&sweep).unwrap();

        let cd = coordinate_descent(&device, &params, &size, &cfg, &TileSizes::new_2d(4, 4, 32));
        let sa = simulated_annealing(&device, &params, &size, &cfg, 2, 50, 3);
        // Never better than the exhaustive optimum…
        assert!(cd.talg >= best.talg * (1.0 - 1e-12));
        assert!(sa.talg >= best.talg * (1.0 - 1e-12));
        // …and within 2× of it (they are decent heuristics).
        assert!(
            cd.talg <= 2.0 * best.talg,
            "cd {:e} vs best {:e}",
            cd.talg,
            best.talg
        );
        assert!(
            sa.talg <= 2.0 * best.talg,
            "sa {:e} vs best {:e}",
            sa.talg,
            best.talg
        );
        // They also spend far fewer evaluations than the sweep.
        assert!(cd.evaluations < space.len());
    }
}
