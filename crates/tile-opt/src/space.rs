//! The feasible tile-size space of the paper's Eqn 31.
//!
//! ```text
//! minimize  T_alg(t_S1, t_S2, t_T)
//! subject to  M_tile ≤ M_SM / threadblock      (48 KB per-block cap)
//!             k ≤ MTB_SM
//!             k · M_tile ≤ M_SM
//!             t_S1 integer, t_S2 multiple of 32, t_T even
//! ```
//!
//! For 3D stencils the warp-alignment constraint moves to the innermost
//! dimension `t_S3`; `t_S2` becomes a small free integer like `t_S1`.

use gpu_sim::DeviceConfig;
use hhc_tiling::TileSizes;
use serde::{Deserialize, Serialize};
use stencil_core::StencilDim;
use time_model::{hex1d, hybrid2d, hybrid3d};

/// Bounds of the enumerated feasible space. The defaults cover the same
/// ranges the paper's experiments explore; enlarging them only grows the
/// (cheap) model sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Candidate even time-tile extents `t_T`.
    pub t_t: Vec<usize>,
    /// Candidate hexagon bases `t_S1`.
    pub t_s1: Vec<usize>,
    /// Candidate free inner extents (non-innermost, 3D only).
    pub t_s_mid: Vec<usize>,
    /// Candidate warp-aligned innermost extents (multiples of 32).
    pub t_s_inner: Vec<usize>,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            t_t: vec![2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64],
            t_s1: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128],
            t_s_mid: vec![2, 4, 6, 8, 12, 16, 24, 32],
            t_s_inner: vec![32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 448, 512],
        }
    }
}

/// The model-level `M_tile` for a tile-size candidate.
pub fn mtile_words(dim: StencilDim, tiles: &TileSizes) -> u64 {
    match dim {
        StencilDim::D1 => hex1d::mtile_words(tiles),
        StencilDim::D2 => hybrid2d::mtile_words(tiles),
        StencilDim::D3 => hybrid3d::mtile_words(tiles),
    }
}

/// Whether a candidate satisfies Eqn 31's constraints on `device`.
pub fn is_feasible(device: &DeviceConfig, dim: StencilDim, tiles: &TileSizes) -> bool {
    if tiles.validate(dim).is_err() {
        return false;
    }
    let mtile = mtile_words(dim, tiles);
    // M_tile ≤ M_SM/threadblock (the 48 KB per-block cap); the k·M_tile
    // ≤ M_SM and k ≤ MTB_SM constraints are then satisfied by the
    // definition of k (Eqn 11).
    mtile <= device.shared_per_block_words
}

/// Enumerate the feasible tile-size space for a stencil dimensionality.
pub fn feasible_tiles(device: &DeviceConfig, dim: StencilDim, cfg: &SpaceConfig) -> Vec<TileSizes> {
    let mut out = Vec::new();
    let mut enumerated = 0u64;
    let mut check = |t: TileSizes, out: &mut Vec<TileSizes>| {
        enumerated += 1;
        if is_feasible(device, dim, &t) {
            out.push(t);
        }
    };
    match dim {
        StencilDim::D1 => {
            for &t_t in &cfg.t_t {
                for &s1 in &cfg.t_s1 {
                    check(TileSizes::new_1d(t_t, s1), &mut out);
                }
            }
        }
        StencilDim::D2 => {
            for &t_t in &cfg.t_t {
                for &s1 in &cfg.t_s1 {
                    for &s2 in &cfg.t_s_inner {
                        check(TileSizes::new_2d(t_t, s1, s2), &mut out);
                    }
                }
            }
        }
        StencilDim::D3 => {
            for &t_t in &cfg.t_t {
                for &s1 in &cfg.t_s1 {
                    for &s2 in &cfg.t_s_mid {
                        for &s3 in &cfg.t_s_inner {
                            check(TileSizes::new_3d(t_t, s1, s2, s3), &mut out);
                        }
                    }
                }
            }
        }
    }
    if obs::active() {
        obs::counter("opt.space_enumerated", enumerated);
        obs::counter("opt.space_feasible", out.len() as u64);
        obs::counter("opt.space_pruned", enumerated - out.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_space_is_nonempty_and_respects_cap() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            let tiles = feasible_tiles(&d, dim, &cfg);
            assert!(tiles.len() > 50, "{dim:?}: {}", tiles.len());
            for t in &tiles {
                assert!(mtile_words(dim, t) <= d.shared_per_block_words, "{t:?}");
                assert_eq!(t.t_t % 2, 0);
            }
        }
    }

    #[test]
    fn oversized_tiles_are_infeasible() {
        let d = DeviceConfig::gtx980();
        // 2(65+57)(513+57)-ish ≫ 12288 words.
        let t = TileSizes::new_2d(56, 64, 512);
        assert!(!is_feasible(&d, StencilDim::D2, &t));
    }

    #[test]
    fn inner_dimension_is_warp_aligned() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        for t in feasible_tiles(&d, StencilDim::D2, &cfg) {
            assert_eq!(t.t_s[1] % 32, 0, "{t:?}");
        }
        for t in feasible_tiles(&d, StencilDim::D3, &cfg) {
            assert_eq!(t.t_s[2] % 32, 0, "{t:?}");
        }
    }

    #[test]
    fn odd_tt_rejected_by_feasibility() {
        let d = DeviceConfig::gtx980();
        let t = TileSizes {
            t_t: 3,
            t_s: [8, 32, 1],
        };
        assert!(!is_feasible(&d, StencilDim::D2, &t));
    }

    #[test]
    fn space_size_is_in_the_paper_ballpark() {
        // The paper says the feasible space is ≥ 200× the 850-point
        // baseline per experiment when thread counts are included; the
        // tile-size grid alone lands in the low thousands.
        let d = DeviceConfig::gtx980();
        let n = feasible_tiles(&d, StencilDim::D2, &SpaceConfig::default()).len();
        assert!((200..20_000).contains(&n), "n = {n}");
    }
}
