//! The feasible tile-size space of the paper's Eqn 31.
//!
//! ```text
//! minimize  T_alg(t_S1, t_S2, t_T)
//! subject to  M_tile ≤ M_SM / threadblock      (48 KB per-block cap)
//!             k ≤ MTB_SM
//!             k · M_tile ≤ M_SM
//!             t_S1 integer, t_S2 multiple of 32, t_T even
//! ```
//!
//! For 3D stencils the warp-alignment constraint moves to the innermost
//! dimension `t_S3`; `t_S2` becomes a small free integer like `t_S1`.

use gpu_sim::{DeviceConfig, Workload};
use hhc_tiling::TileSizes;
use serde::{Deserialize, Serialize};
use stencil_core::StencilDim;

/// Bounds of the enumerated feasible space. The defaults cover the same
/// ranges the paper's experiments explore; enlarging them only grows the
/// (cheap) model sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Candidate even time-tile extents `t_T`.
    pub t_t: Vec<usize>,
    /// Candidate hexagon bases `t_S1`.
    pub t_s1: Vec<usize>,
    /// Candidate free inner extents (non-innermost, 3D only).
    pub t_s_mid: Vec<usize>,
    /// Candidate warp-aligned innermost extents (multiples of 32).
    pub t_s_inner: Vec<usize>,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            t_t: vec![2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64],
            t_s1: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128],
            t_s_mid: vec![2, 4, 6, 8, 12, 16, 24, 32],
            t_s_inner: vec![32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 448, 512],
        }
    }
}

/// The model-level `M_tile` for a tile-size candidate (the
/// dimension-generic [`time_model::DimSpec`] footprint).
pub fn mtile_words(dim: StencilDim, tiles: &TileSizes) -> u64 {
    time_model::mtile_words(dim, tiles)
}

/// [`mtile_words`] for a radius-`r` stencil: halos and skews widen with
/// the hexagon slope, so larger-radius descriptors fit fewer candidate
/// tiles under the shared-memory cap.
pub fn mtile_words_r(dim: StencilDim, radius: u64, tiles: &TileSizes) -> u64 {
    time_model::DimSpec::with_radius(dim, radius).mtile_words(tiles)
}

/// The candidate-value axes of the feasible space, in coordinate order
/// `[t_T, t_S1, (t_S_mid…,) t_S_inner]`: the hexagon base and time
/// extent always, then the free middle extents, then the warp-aligned
/// innermost extent (absent for 1D, where the hexagon base *is* the
/// innermost dimension). The solvers walk the same axes, so the
/// comparison with the exhaustive sweep is apples-to-apples.
pub fn coordinate_axes(cfg: &SpaceConfig, dim: StencilDim) -> Vec<&[usize]> {
    let rank = dim.rank();
    let mut axes: Vec<&[usize]> = Vec::with_capacity(rank + 1);
    axes.push(&cfg.t_t);
    axes.push(&cfg.t_s1);
    for _ in 2..rank {
        axes.push(&cfg.t_s_mid);
    }
    if rank >= 2 {
        axes.push(&cfg.t_s_inner);
    }
    axes
}

/// Whether a candidate satisfies Eqn 31's constraints on `device`.
pub fn is_feasible(device: &DeviceConfig, dim: StencilDim, tiles: &TileSizes) -> bool {
    is_feasible_r(device, dim, 1, tiles)
}

/// [`is_feasible`] for a radius-`r` stencil (radius-aware `M_tile`).
pub fn is_feasible_r(
    device: &DeviceConfig,
    dim: StencilDim,
    radius: u64,
    tiles: &TileSizes,
) -> bool {
    if tiles.validate(dim).is_err() {
        return false;
    }
    let mtile = mtile_words_r(dim, radius, tiles);
    // M_tile ≤ M_SM/threadblock (the 48 KB per-block cap); the k·M_tile
    // ≤ M_SM and k ≤ MTB_SM constraints are then satisfied by the
    // definition of k (Eqn 11).
    mtile <= device.shared_per_block_words
}

/// Enumerate the feasible tile-size space for a stencil dimensionality:
/// the cartesian product of [`coordinate_axes`] in lexicographic order
/// (last axis fastest), filtered by [`is_feasible`].
pub fn feasible_tiles(device: &DeviceConfig, dim: StencilDim, cfg: &SpaceConfig) -> Vec<TileSizes> {
    feasible_tiles_r(device, dim, 1, cfg)
}

/// [`feasible_tiles`] for a radius-`r` stencil. Radius 1 enumerates the
/// identical space in the identical order (the radius only enters the
/// `M_tile` filter, through exact integer arithmetic).
pub fn feasible_tiles_r(
    device: &DeviceConfig,
    dim: StencilDim,
    radius: u64,
    cfg: &SpaceConfig,
) -> Vec<TileSizes> {
    let axes = coordinate_axes(cfg, dim);
    let mut out = Vec::new();
    let mut enumerated = 0u64;
    if axes.iter().all(|a| !a.is_empty()) {
        let mut idx = vec![0usize; axes.len()];
        let mut coords = vec![0usize; axes.len()];
        'space: loop {
            for (c, (&i, axis)) in coords.iter_mut().zip(idx.iter().zip(&axes)) {
                *c = axis[i];
            }
            let t = TileSizes::from_coords(dim, &coords).expect("one coordinate per axis");
            enumerated += 1;
            if is_feasible_r(device, dim, radius, &t) {
                out.push(t);
            }
            let mut d = axes.len();
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < axes[d].len() {
                    continue 'space;
                }
                idx[d] = 0;
            }
            break;
        }
    }
    if obs::active() {
        obs::counter("opt.space_enumerated", enumerated);
        obs::counter("opt.space_feasible", out.len() as u64);
        obs::counter("opt.space_pruned", enumerated - out.len() as u64);
    }
    out
}

/// [`feasible_tiles`] for a [`Workload`]: the space of Eqn 31 for the
/// workload's device, dimensionality, and stencil radius.
pub fn feasible_space(w: &Workload, cfg: &SpaceConfig) -> Vec<TileSizes> {
    feasible_tiles_r(&w.device, w.dim(), w.radius().max(1) as u64, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_space_is_nonempty_and_respects_cap() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            let tiles = feasible_tiles(&d, dim, &cfg);
            assert!(tiles.len() > 50, "{dim:?}: {}", tiles.len());
            for t in &tiles {
                assert!(mtile_words(dim, t) <= d.shared_per_block_words, "{t:?}");
                assert_eq!(t.t_t % 2, 0);
            }
        }
    }

    #[test]
    fn oversized_tiles_are_infeasible() {
        let d = DeviceConfig::gtx980();
        // 2(65+57)(513+57)-ish ≫ 12288 words.
        let t = TileSizes::new_2d(56, 64, 512);
        assert!(!is_feasible(&d, StencilDim::D2, &t));
    }

    #[test]
    fn inner_dimension_is_warp_aligned() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        for t in feasible_tiles(&d, StencilDim::D2, &cfg) {
            assert_eq!(t.t_s[1] % 32, 0, "{t:?}");
        }
        for t in feasible_tiles(&d, StencilDim::D3, &cfg) {
            assert_eq!(t.t_s[2] % 32, 0, "{t:?}");
        }
    }

    #[test]
    fn odd_tt_rejected_by_feasibility() {
        let d = DeviceConfig::gtx980();
        let t = TileSizes {
            t_t: 3,
            t_s: [8, 32, 1],
        };
        assert!(!is_feasible(&d, StencilDim::D2, &t));
    }

    #[test]
    fn enumeration_order_is_lexicographic_in_the_axes() {
        // The generic odometer must reproduce the historical nested-loop
        // order exactly (result files are diffed byte-for-byte).
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        let got = feasible_tiles(&d, StencilDim::D3, &cfg);
        let mut expect = Vec::new();
        for &t_t in &cfg.t_t {
            for &s1 in &cfg.t_s1 {
                for &s2 in &cfg.t_s_mid {
                    for &s3 in &cfg.t_s_inner {
                        let t = TileSizes::new_3d(t_t, s1, s2, s3);
                        if is_feasible(&d, StencilDim::D3, &t) {
                            expect.push(t);
                        }
                    }
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn workload_space_matches_loose_arguments() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        let w = Workload::new(
            d.clone(),
            stencil_core::StencilKind::Heat2D,
            stencil_core::ProblemSize::new_2d(512, 512, 64),
        )
        .unwrap();
        assert_eq!(
            feasible_space(&w, &cfg),
            feasible_tiles(&d, StencilDim::D2, &cfg)
        );
    }

    #[test]
    fn larger_radius_shrinks_the_space_monotonically() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        for dim in [StencilDim::D1, StencilDim::D2, StencilDim::D3] {
            let r1 = feasible_tiles_r(&d, dim, 1, &cfg);
            let r2 = feasible_tiles_r(&d, dim, 2, &cfg);
            assert_eq!(r1, feasible_tiles(&d, dim, &cfg));
            assert!(!r2.is_empty(), "{dim:?}");
            assert!(r2.len() <= r1.len(), "{dim:?}");
            // Radius 2 is a filtered subsequence of radius 1.
            let mut it = r1.iter();
            for t in &r2 {
                assert!(it.any(|u| u == t), "{t:?} not in radius-1 order");
            }
        }
    }

    #[test]
    fn descriptor_radius_flows_into_workload_space() {
        let d = DeviceConfig::gtx980();
        let cfg = SpaceConfig::default();
        let w = Workload::new(
            d.clone(),
            stencil_core::StencilDescriptor::lap4_2d(),
            stencil_core::ProblemSize::new_2d(512, 512, 64),
        )
        .unwrap();
        assert_eq!(
            feasible_space(&w, &cfg),
            feasible_tiles_r(&d, StencilDim::D2, 2, &cfg)
        );
    }

    #[test]
    fn space_size_is_in_the_paper_ballpark() {
        // The paper says the feasible space is ≥ 200× the 850-point
        // baseline per experiment when thread counts are included; the
        // tile-size grid alone lands in the low thousands.
        let d = DeviceConfig::gtx980();
        let n = feasible_tiles(&d, StencilDim::D2, &SpaceConfig::default()).len();
        assert!((200..20_000).contains(&n), "n = {n}");
    }
}
