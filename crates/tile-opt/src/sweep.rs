//! Exhaustive, parallel evaluation of the analytical model over the
//! feasible space — the paper's "script-driven exhaustive analytical
//! evaluation" (Section 6.1).

use hhc_tiling::TileSizes;
use rayon::prelude::*;
use stencil_core::ProblemSize;
use time_model::{predict, predict_with, Correction, DimSpec, ModelParams, Prediction};

/// Evaluate `T_alg` for every candidate, in parallel.
pub fn model_sweep(
    params: &ModelParams,
    size: &ProblemSize,
    tiles: &[TileSizes],
) -> Vec<(TileSizes, Prediction)> {
    tiles
        .par_iter()
        .map(|t| (*t, predict(params, size, t)))
        .collect()
}

/// [`model_sweep`] under an optional calibration [`Correction`] — what
/// the advisor ranks when a calibration store has enough evidence for
/// the queried (device, stencil, dim) segment. `None` routes through
/// the plain [`predict`] path and is bit-identical to [`model_sweep`].
pub fn model_sweep_with(
    params: &ModelParams,
    size: &ProblemSize,
    tiles: &[TileSizes],
    corr: Option<&Correction>,
) -> Vec<(TileSizes, Prediction)> {
    match corr {
        None => model_sweep(params, size, tiles),
        Some(corr) => tiles
            .par_iter()
            .map(|t| (*t, predict_with(params, size, t, Some(corr))))
            .collect(),
    }
}

/// [`model_sweep_with`] for an explicit [`DimSpec`] — the descriptor
/// path, where the stencil radius widens halos and row sums. A radius-1
/// spec is bit-identical to [`model_sweep_with`] (which it subsumes).
pub fn model_sweep_spec(
    spec: DimSpec,
    params: &ModelParams,
    size: &ProblemSize,
    tiles: &[TileSizes],
    corr: Option<&Correction>,
) -> Vec<(TileSizes, Prediction)> {
    tiles
        .par_iter()
        .map(|t| (*t, spec.predict_with(params, size, t, corr)))
        .collect()
}

/// The predicted-optimal point `T_alg min` of a sweep.
///
/// Ties break toward the lexicographically smaller tile size so the
/// result is deterministic regardless of parallel evaluation order.
pub fn talg_min(sweep: &[(TileSizes, Prediction)]) -> Option<(TileSizes, Prediction)> {
    sweep
        .iter()
        .min_by(|a, b| {
            a.1.talg
                .total_cmp(&b.1.talg)
                .then_with(|| (a.0.t_t, a.0.t_s).cmp(&(b.0.t_t, b.0.t_s)))
        })
        .copied()
}

/// All candidates whose prediction is within `fraction` of the predicted
/// minimum — the paper's "within 10 % of `T_alg min`" set (< 200 points).
pub fn within_fraction(
    sweep: &[(TileSizes, Prediction)],
    fraction: f64,
) -> Vec<(TileSizes, Prediction)> {
    let Some((_, best)) = talg_min(sweep) else {
        return Vec::new();
    };
    let cutoff = best.talg * (1.0 + fraction);
    let mut v: Vec<_> = sweep
        .iter()
        .filter(|(_, p)| p.talg <= cutoff)
        .copied()
        .collect();
    v.sort_by(|a, b| {
        a.1.talg
            .total_cmp(&b.1.talg)
            .then_with(|| (a.0.t_t, a.0.t_s).cmp(&(b.0.t_t, b.0.t_s)))
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{feasible_tiles, SpaceConfig};
    use gpu_sim::DeviceConfig;
    use stencil_core::StencilDim;
    use time_model::MeasuredParams;

    fn params() -> ModelParams {
        ModelParams::from_measured(
            &DeviceConfig::gtx980(),
            &MeasuredParams::paper_gtx980(3.39e-8),
        )
    }

    fn sweep_2d() -> Vec<(TileSizes, Prediction)> {
        let d = DeviceConfig::gtx980();
        let tiles = feasible_tiles(&d, StencilDim::D2, &SpaceConfig::default());
        model_sweep(&params(), &ProblemSize::new_2d(1024, 1024, 512), &tiles)
    }

    #[test]
    fn min_is_really_minimal() {
        let sweep = sweep_2d();
        let (_, best) = talg_min(&sweep).unwrap();
        assert!(sweep.iter().all(|(_, p)| p.talg >= best.talg));
    }

    #[test]
    fn within_set_is_small_and_sorted() {
        let sweep = sweep_2d();
        let within = within_fraction(&sweep, 0.10);
        // Paper: "there were less than 200 such points".
        assert!(!within.is_empty());
        assert!(
            within.len() < 200,
            "within-10% set has {} points",
            within.len()
        );
        assert!(within.windows(2).all(|w| w[0].1.talg <= w[1].1.talg));
        // The minimum itself is the first element.
        let (tmin, _) = talg_min(&sweep).unwrap();
        assert_eq!(within[0].0, tmin);
    }

    #[test]
    fn within_zero_fraction_is_the_minima() {
        let sweep = sweep_2d();
        let within = within_fraction(&sweep, 0.0);
        let (_, best) = talg_min(&sweep).unwrap();
        assert!(within.iter().all(|(_, p)| p.talg == best.talg));
    }

    #[test]
    fn sweep_deterministic_despite_parallelism() {
        let a = sweep_2d();
        let b = sweep_2d();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.talg.to_bits(), y.1.talg.to_bits());
        }
    }

    #[test]
    fn spec_sweep_at_radius_one_matches_legacy_bitwise() {
        let d = DeviceConfig::gtx980();
        let tiles = feasible_tiles(&d, StencilDim::D2, &SpaceConfig::default());
        let size = ProblemSize::new_2d(1024, 1024, 512);
        let legacy = model_sweep_with(&params(), &size, &tiles, None);
        let spec = model_sweep_spec(DimSpec::of(StencilDim::D2), &params(), &size, &tiles, None);
        assert_eq!(legacy.len(), spec.len());
        for (a, b) in legacy.iter().zip(&spec) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.talg.to_bits(), b.1.talg.to_bits());
        }
    }

    #[test]
    fn radius_enters_the_spec_sweep() {
        let d = DeviceConfig::gtx980();
        let size = ProblemSize::new_2d(1024, 1024, 512);
        let tiles = feasible_tiles(&d, StencilDim::D2, &SpaceConfig::default());
        let r1 = model_sweep_spec(DimSpec::of(StencilDim::D2), &params(), &size, &tiles, None);
        let r2 = model_sweep_spec(
            DimSpec::with_radius(StencilDim::D2, 2),
            &params(),
            &size,
            &tiles,
            None,
        );
        // Same candidates, different geometry: every prediction is finite
        // and positive, and the radius visibly moves the surface.
        assert_eq!(r1.len(), r2.len());
        assert!(r2.iter().all(|(_, p)| p.talg.is_finite() && p.talg > 0.0));
        let moved = r1
            .iter()
            .zip(&r2)
            .filter(|(a, b)| a.1.talg.to_bits() != b.1.talg.to_bits())
            .count();
        assert!(moved > r1.len() / 2, "only {moved}/{} moved", r1.len());
        // And the predicted optimum is not the same point-by-accident
        // value: minima exist on both surfaces.
        assert!(talg_min(&r1).is_some() && talg_min(&r2).is_some());
    }

    #[test]
    fn empty_sweep_handled() {
        assert!(talg_min(&[]).is_none());
        assert!(within_fraction(&[], 0.1).is_empty());
    }
}
