//! Execute a candidate set on the parallel tiled executor.
//!
//! The paper's selection pipeline (Section 6.1) keeps every feasible
//! point within 10 % of the predicted `T_alg` minimum and *runs* that
//! set to pick the final tile sizes. This module is the running half:
//! [`run_candidates`] executes each candidate with
//! [`hhc_tiling::run_tiled_parallel_into`], sharing one [`ScratchPool`]
//! and one output grid across the whole set, so a sweep of dozens of
//! candidates costs one warm-up's worth of allocations.

use hhc_tiling::{run_tiled_parallel_into, ExecStats, ScratchPool, TileSizes};
use std::time::Instant;
use stencil_core::{Grid, ProblemSize, StencilSpec};

/// One executed candidate.
#[derive(Debug, Clone, Copy)]
pub struct CandidateRun {
    /// The tile sizes executed.
    pub tiles: TileSizes,
    /// Wall-clock execution time (s).
    pub wall_s: f64,
    /// The execution's stats (pool reuse, kernel coverage, ring depth).
    pub stats: ExecStats,
}

/// Result of running a candidate set.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Per-candidate timings, in input order (infeasible tile sizes are
    /// skipped).
    pub runs: Vec<CandidateRun>,
    /// Index into `runs` of the fastest candidate (first of equals).
    pub best: Option<usize>,
    /// Pool checkouts across the whole set.
    pub scratch_acquires: u64,
    /// Checkouts served without allocating.
    pub scratch_reuses: u64,
}

/// Execute every valid candidate on the parallel executor and time it.
///
/// All candidates share one pool and one output grid; the winner is the
/// first candidate achieving the minimal wall time, so the report is
/// deterministic for a fixed machine load.
pub fn run_candidates(
    spec: &StencilSpec,
    size: &ProblemSize,
    init: &Grid,
    candidates: &[TileSizes],
) -> CandidateReport {
    let _span = obs::span("opt.run_candidates", "optimizer");
    let pool = ScratchPool::new();
    let mut out = Grid::zeros(size.space_extents());
    let mut runs = Vec::with_capacity(candidates.len());
    for &tiles in candidates {
        if tiles.validate(spec.dim).is_err() {
            continue;
        }
        let start = Instant::now();
        let stats = run_tiled_parallel_into(spec, size, tiles, init, &pool, &mut out);
        let wall_s = start.elapsed().as_secs_f64();
        runs.push(CandidateRun {
            tiles,
            wall_s,
            stats,
        });
    }
    let mut best: Option<usize> = None;
    for (i, r) in runs.iter().enumerate() {
        if best.is_none_or(|b| r.wall_s < runs[b].wall_s) {
            best = Some(i);
        }
    }
    if obs::active() {
        obs::counter("opt.candidate_runs", runs.len() as u64);
    }
    CandidateReport {
        runs,
        best,
        scratch_acquires: pool.acquires(),
        scratch_reuses: pool.reuses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{init, reference, StencilKind};

    #[test]
    fn candidate_sweep_reuses_pool_and_picks_a_winner() {
        let spec = StencilKind::Jacobi2D.spec();
        let size = ProblemSize::new_2d(33, 29, 8);
        let grid = init::random(size.space_extents(), 3);
        let candidates = [
            TileSizes::new_2d(4, 5, 6),
            TileSizes::new_2d(6, 4, 8),
            TileSizes::new_2d(2, 8, 8),
        ];
        let report = run_candidates(&spec, &size, &grid, &candidates);
        assert_eq!(report.runs.len(), candidates.len());
        let best = report.best.expect("non-empty set has a winner");
        let min = report
            .runs
            .iter()
            .map(|r| r.wall_s)
            .fold(f64::MAX, f64::min);
        assert!(report.runs[best].wall_s <= min);
        // Later candidates run on recycled buffers.
        assert!(report.scratch_reuses > 0, "{report:?}");
        assert!(report.scratch_acquires > report.scratch_reuses);
        // And each run's result is still the exact stencil answer.
        let expect = reference::run(&spec, &size, &grid);
        let again = hhc_tiling::run_tiled_parallel(&spec, &size, candidates[0], &grid);
        assert_eq!(expect.max_abs_diff(&again), 0.0);
    }

    #[test]
    fn infeasible_candidates_are_skipped() {
        let spec = StencilKind::Jacobi1D.spec();
        let size = ProblemSize::new_1d(40, 6);
        let grid = init::random(size.space_extents(), 1);
        // Odd t_t is invalid for the hexagonal schedule.
        let candidates = [TileSizes::new_1d(3, 4), TileSizes::new_1d(4, 4)];
        let report = run_candidates(&spec, &size, &grid, &candidates);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].tiles, TileSizes::new_1d(4, 4));
    }
}
