//! Execute a candidate set on the parallel tiled executor.
//!
//! The paper's selection pipeline (Section 6.1) keeps every feasible
//! point within 10 % of the predicted `T_alg` minimum and *runs* that
//! set to pick the final tile sizes. This module is the running half:
//! [`run_candidates`] executes each candidate with
//! [`hhc_tiling::run_tiled_parallel_into`], sharing one [`ScratchPool`]
//! and one output grid across the whole set, so a sweep of dozens of
//! candidates costs one warm-up's worth of allocations.

use hhc_tiling::{run_tiled_parallel_into, ExecStats, ScratchPool, TileSizes};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use stencil_core::{Grid, ProblemSize, StencilSpec};

/// One executed candidate.
#[derive(Debug, Clone, Copy)]
pub struct CandidateRun {
    /// The tile sizes executed.
    pub tiles: TileSizes,
    /// Wall-clock execution time (s).
    pub wall_s: f64,
    /// The execution's stats (pool reuse, kernel coverage, ring depth).
    pub stats: ExecStats,
}

/// Why a candidate was not executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The tile sizes are invalid for the stencil's dimensionality
    /// (carries the validator's message).
    Infeasible(String),
    /// The caller's deadline expired before this candidate started.
    DeadlineExceeded,
}

impl SkipReason {
    /// Short machine-readable label (`"infeasible"` / `"deadline"`).
    pub fn label(&self) -> &'static str {
        match self {
            SkipReason::Infeasible(_) => "infeasible",
            SkipReason::DeadlineExceeded => "deadline",
        }
    }
}

/// A candidate that was not executed: its position in the input set,
/// the tile sizes, and why it was skipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedCandidate {
    /// Index into the input candidate slice.
    pub index: usize,
    /// The candidate's tile sizes.
    pub tiles: TileSizes,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Result of running a candidate set.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Per-candidate timings, in input order. `runs` can be shorter than
    /// the input set; every missing candidate appears in `skipped`.
    pub runs: Vec<CandidateRun>,
    /// Index into `runs` of the fastest candidate (first of equals).
    pub best: Option<usize>,
    /// Candidates that were not executed (input index + reason) — a set
    /// of infeasible tile sizes or a deadline cut no longer vanishes
    /// silently from the report.
    pub skipped: Vec<SkippedCandidate>,
    /// Pool checkouts across the whole set.
    pub scratch_acquires: u64,
    /// Checkouts served without allocating.
    pub scratch_reuses: u64,
}

/// Execute every valid candidate on the parallel executor and time it.
///
/// All candidates share one pool and one output grid; the winner is the
/// first candidate achieving the minimal wall time, so the report is
/// deterministic for a fixed machine load. Infeasible candidates are
/// recorded in [`CandidateReport::skipped`] (and counted on the
/// `opt.candidates_skipped` counter), never silently dropped.
pub fn run_candidates(
    spec: &StencilSpec,
    size: &ProblemSize,
    init: &Grid,
    candidates: &[TileSizes],
) -> CandidateReport {
    run_candidates_until(spec, size, init, candidates, None)
}

/// [`run_candidates`] with an optional deadline: candidates whose
/// execution has not *started* by `deadline` are skipped with
/// [`SkipReason::DeadlineExceeded`] (a candidate already running is
/// allowed to finish — executions are not cancellable mid-kernel). The
/// advisor service uses this for graceful degradation under a per-query
/// timeout.
pub fn run_candidates_until(
    spec: &StencilSpec,
    size: &ProblemSize,
    init: &Grid,
    candidates: &[TileSizes],
    deadline: Option<Instant>,
) -> CandidateReport {
    let _span = obs::span("opt.run_candidates", "optimizer");
    let pool = ScratchPool::new();
    let mut out = Grid::zeros(size.space_extents());
    let mut runs = Vec::with_capacity(candidates.len());
    let mut skipped = Vec::new();
    for (index, &tiles) in candidates.iter().enumerate() {
        if let Err(msg) = tiles.validate(spec.dim) {
            skipped.push(SkippedCandidate {
                index,
                tiles,
                reason: SkipReason::Infeasible(msg),
            });
            continue;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            skipped.push(SkippedCandidate {
                index,
                tiles,
                reason: SkipReason::DeadlineExceeded,
            });
            continue;
        }
        let start = Instant::now();
        let stats = run_tiled_parallel_into(spec, size, tiles, init, &pool, &mut out);
        let wall_s = start.elapsed().as_secs_f64();
        runs.push(CandidateRun {
            tiles,
            wall_s,
            stats,
        });
    }
    let mut best: Option<usize> = None;
    for (i, r) in runs.iter().enumerate() {
        if best.is_none_or(|b| r.wall_s < runs[b].wall_s) {
            best = Some(i);
        }
    }
    if obs::active() {
        obs::counter("opt.candidate_runs", runs.len() as u64);
        obs::counter("opt.candidates_skipped", skipped.len() as u64);
    }
    CandidateReport {
        runs,
        best,
        skipped,
        scratch_acquires: pool.acquires(),
        scratch_reuses: pool.reuses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{init, reference, StencilKind};

    #[test]
    fn candidate_sweep_reuses_pool_and_picks_a_winner() {
        let spec = StencilKind::Jacobi2D.spec();
        let size = ProblemSize::new_2d(33, 29, 8);
        let grid = init::random(size.space_extents(), 3);
        let candidates = [
            TileSizes::new_2d(4, 5, 6),
            TileSizes::new_2d(6, 4, 8),
            TileSizes::new_2d(2, 8, 8),
        ];
        let report = run_candidates(&spec, &size, &grid, &candidates);
        assert_eq!(report.runs.len(), candidates.len());
        assert!(report.skipped.is_empty());
        let best = report.best.expect("non-empty set has a winner");
        let min = report
            .runs
            .iter()
            .map(|r| r.wall_s)
            .fold(f64::MAX, f64::min);
        assert!(report.runs[best].wall_s <= min);
        // Later candidates run on recycled buffers.
        assert!(report.scratch_reuses > 0, "{report:?}");
        assert!(report.scratch_acquires > report.scratch_reuses);
        // And each run's result is still the exact stencil answer.
        let expect = reference::run(&spec, &size, &grid);
        let again = hhc_tiling::run_tiled_parallel(&spec, &size, candidates[0], &grid);
        assert_eq!(expect.max_abs_diff(&again), 0.0);
    }

    #[test]
    fn infeasible_candidates_are_recorded_as_skipped() {
        let spec = StencilKind::Jacobi1D.spec();
        let size = ProblemSize::new_1d(40, 6);
        let grid = init::random(size.space_extents(), 1);
        // Odd t_t is invalid for the hexagonal schedule.
        let candidates = [TileSizes::new_1d(3, 4), TileSizes::new_1d(4, 4)];
        let report = run_candidates(&spec, &size, &grid, &candidates);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].tiles, TileSizes::new_1d(4, 4));
        // The skip is visible, attributed to the right input slot, and
        // carries the validator's reason.
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].index, 0);
        assert_eq!(report.skipped[0].tiles, TileSizes::new_1d(3, 4));
        assert!(matches!(
            report.skipped[0].reason,
            SkipReason::Infeasible(_)
        ));
        assert_eq!(report.skipped[0].reason.label(), "infeasible");
    }

    #[test]
    fn expired_deadline_skips_every_remaining_candidate() {
        let spec = StencilKind::Jacobi1D.spec();
        let size = ProblemSize::new_1d(40, 6);
        let grid = init::random(size.space_extents(), 1);
        let candidates = [TileSizes::new_1d(4, 4), TileSizes::new_1d(2, 8)];
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let report = run_candidates_until(&spec, &size, &grid, &candidates, Some(past));
        assert!(report.runs.is_empty());
        assert!(report.best.is_none());
        assert_eq!(report.skipped.len(), 2);
        assert!(report
            .skipped
            .iter()
            .all(|s| s.reason == SkipReason::DeadlineExceeded));
        // A far-future deadline behaves like no deadline at all.
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        let report = run_candidates_until(&spec, &size, &grid, &candidates, Some(future));
        assert_eq!(report.runs.len(), 2);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn skip_counter_reaches_the_recorder() {
        let _g = lock_obs();
        let rec = std::sync::Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet));
        obs::install(rec.clone());
        let spec = StencilKind::Jacobi1D.spec();
        let size = ProblemSize::new_1d(40, 6);
        let grid = init::random(size.space_extents(), 1);
        let candidates = [TileSizes::new_1d(3, 4), TileSizes::new_1d(4, 4)];
        run_candidates(&spec, &size, &grid, &candidates);
        obs::uninstall();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("opt.candidates_skipped"), 1);
        assert_eq!(snap.counter("opt.candidate_runs"), 1);
    }

    fn lock_obs() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
