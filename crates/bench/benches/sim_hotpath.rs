//! Simulator hot-path benchmarks: the closed-form steady-state kernel
//! scheduler vs the exact O(total-blocks) dealing loop, the pooled
//! wavefront-parallel executor vs the sequential fast path, and a full
//! `simulate` call over a real tiling plan. Companion to
//! `experiments --bench-exec --parallel-exec`, which times the same
//! paths on larger workloads and persists `BENCH_exec.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{kernel_time, kernel_time_dealing, occupancy, simulate, DeviceConfig, SimWorkload};
use hhc_tiling::{
    run_tiled_parallel_with_stats, run_tiled_with, ExecOptions, LaunchConfig, ScratchPool,
    TileSizes, TilingPlan,
};
use std::hint::black_box;
use stencil_core::{init, ProblemSize, StencilKind};

fn jacobi2d_workload() -> (DeviceConfig, SimWorkload) {
    let device = DeviceConfig::gtx980();
    let spec = StencilKind::Jacobi2D.spec();
    let size = ProblemSize::new_2d(1024, 1024, 128);
    // (8, 32, 256) overflows gtx980 shared memory per block; 128 fits.
    let tiles = TileSizes::new_2d(8, 32, 128);
    let plan =
        TilingPlan::build(&spec, &size, tiles, LaunchConfig::new_2d(4, 32)).expect("plan builds");
    (device, SimWorkload::from_plan(&plan))
}

fn bench_kernel_scheduling(c: &mut Criterion) {
    let (device, wl) = jacobi2d_workload();
    let k = occupancy(&device, &wl).expect("occupancy").k;
    // The widest wavefront dominates the schedule cost.
    let classes = wl
        .kernels
        .iter()
        .max_by_key(|kern| kern.block_count())
        .expect("plan has kernels")
        .classes
        .clone();
    let steady = kernel_time(&device, &wl, &classes, k);
    let dealing = kernel_time_dealing(&device, &wl, &classes, k);
    assert_eq!(steady, dealing, "schedulers must agree before timing");

    let mut g = c.benchmark_group("sim_hotpath");
    g.sample_size(10);
    g.bench_function("kernel_time_steady", |b| {
        b.iter(|| black_box(kernel_time(&device, &wl, &classes, k).makespan))
    });
    g.bench_function("kernel_time_dealing", |b| {
        b.iter(|| black_box(kernel_time_dealing(&device, &wl, &classes, k).makespan))
    });
    g.bench_function("simulate_full_plan", |b| {
        b.iter(|| black_box(simulate(&device, &wl).expect("launches").total_time))
    });
    g.finish();
}

fn bench_parallel_executor(c: &mut Criterion) {
    let spec = StencilKind::Jacobi2D.spec();
    let size = ProblemSize::new_2d(256, 256, 32);
    let tiles = TileSizes::new_2d(8, 32, 128);
    let grid = init::random(size.space_extents(), 0x42);

    let mut g = c.benchmark_group("parallel_exec");
    g.sample_size(10);
    g.bench_function("jacobi2d_sequential_fast", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::FAST).unwrap();
            black_box(out.len())
        })
    });
    // One pool for the whole measurement: after the first iteration every
    // run is allocation-free.
    let pool = ScratchPool::new();
    g.bench_function("jacobi2d_parallel_pooled", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_parallel_with_stats(&spec, &size, tiles, &grid, &pool);
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel_scheduling, bench_parallel_executor);
criterion_main!(benches);
