//! Bench for paper Figure 6: the strategy comparison (HHC default /
//! Baseline / Talg-min / Within-10%), printing the average-GFLOPS bars.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::figure6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = hhc_bench::bench_lab();
    let (rows, _) = figure6(&lab, false);
    for r in &rows {
        let bars: Vec<String> = r
            .gflops
            .iter()
            .map(|(s, g)| format!("{s}={g:.1}"))
            .collect();
        println!(
            "[fig6] {} {}: {} (Within10 vs Baseline {:+.1}%)",
            r.device,
            r.benchmark,
            bars.join("  "),
            100.0 * r.within_vs_baseline
        );
    }
    let mut g = c.benchmark_group("fig6_strategies");
    g.sample_size(10);
    g.bench_function("strategy_study_all_2d", |b| {
        b.iter(|| black_box(figure6(&lab, false).0.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
