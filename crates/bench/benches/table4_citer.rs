//! Bench for paper Table 4: the Citer micro-benchmark per stencil.
//! Prints the measured table rows alongside the paper's values.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use std::hint::black_box;
use stencil_core::StencilKind;

fn bench(c: &mut Criterion) {
    let lab = hhc_bench::bench_lab();
    for row in experiments::tables::table4(&lab) {
        println!(
            "[table4] {:12} {:10} measured = {:.3e} s, paper = {:.3e} s",
            row.benchmark,
            row.device,
            row.citer,
            row.paper_citer.unwrap_or(f64::NAN)
        );
    }
    let device = DeviceConfig::gtx980();
    let mut g = c.benchmark_group("table4_citer");
    g.sample_size(10);
    g.bench_function("measure_citer_jacobi2d_8samples", |b| {
        b.iter(|| {
            black_box(microbench::measure_citer(
                &device,
                &StencilKind::Jacobi2D.into(),
                8,
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
