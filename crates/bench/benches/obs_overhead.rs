//! Telemetry overhead guard: the obs layer must be free when disabled.
//!
//! Two comparisons back the claim in `crates/obs`'s crate docs:
//!
//! * the executor hot path (`run_tiled_with`, the workspace's most
//!   instrumented inner loop) with **no recorder installed** vs with a
//!   quiet `MemoryRecorder` — the disabled run must sit within noise of
//!   the pre-telemetry baseline, because every call site guards on one
//!   relaxed atomic load;
//! * the raw disabled call-site cost, measured directly (1000 counter
//!   calls with no recorder — nanoseconds per call, not microseconds).
//!
//! Run with `cargo bench -p hhc-bench --bench obs_overhead` and compare
//! the first two numbers; Criterion's change detection flags a
//! regression when the disabled path drifts.

use criterion::{criterion_group, criterion_main, Criterion};
use hhc_tiling::{run_tiled_with, ExecOptions, TileSizes};
use std::hint::black_box;
use std::sync::Arc;
use stencil_core::{init, ProblemSize, StencilKind};

fn bench_exec_with_and_without_telemetry(c: &mut Criterion) {
    let spec = StencilKind::Jacobi2D.spec();
    let size = ProblemSize::new_2d(256, 256, 32);
    let tiles = TileSizes::new_2d(8, 32, 128);
    let grid = init::random(size.space_extents(), 0x42);

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    // Disabled: the default process state — every obs call site is one
    // relaxed atomic load. This must match the pre-telemetry executor.
    obs::uninstall();
    g.bench_function("exec_fast_telemetry_disabled", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::FAST).unwrap();
            black_box(out.len())
        })
    });

    // Enabled: a quiet in-memory recorder (counters/histograms recorded,
    // events gated off) — the driver's `--log-level quiet` configuration.
    obs::install(Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet)));
    g.bench_function("exec_fast_telemetry_recording", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::FAST).unwrap();
            black_box(out.len())
        })
    });
    obs::uninstall();
    g.finish();
}

/// The enabled hot path, mutex recorder vs sharded recorder, at one
/// thread and under 4-way contention on the *same* counter and
/// histogram. The acceptance bar: sharded is no worse uncontended (both
/// are a registry lookup plus an atomic RMW) and strictly better
/// contended (striped cells vs one mutex).
fn bench_enabled_recorders(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_recorder");
    g.sample_size(20);
    let installers: [(&str, fn()); 2] = [
        ("mutex", || {
            obs::install(Arc::new(obs::MemoryRecorder::new(obs::Level::Quiet)))
        }),
        ("sharded", || {
            obs::install(Arc::new(obs::ShardedRecorder::new(obs::Level::Quiet)))
        }),
    ];
    for (label, install) in installers {
        install();
        g.bench_function(&format!("counter_hist_x1000_1thread_{label}"), |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    obs::counter("bench.ctr", 1);
                    obs::histogram("bench.lat", black_box(i as f64).mul_add(1e-9, 1e-9));
                }
            })
        });
        g.bench_function(&format!("counter_hist_x1000_4threads_{label}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        s.spawn(|| {
                            for i in 0..1000u64 {
                                obs::counter("bench.ctr", 1);
                                obs::histogram(
                                    "bench.lat",
                                    black_box(i as f64).mul_add(1e-9, 1e-9),
                                );
                            }
                        });
                    }
                })
            })
        });
        obs::uninstall();
    }
    g.finish();
}

fn bench_disabled_callsite(c: &mut Criterion) {
    obs::uninstall();
    let mut g = c.benchmark_group("obs_callsite");
    // 1000 disabled counter updates per iteration: the per-call cost is
    // the reported time / 1000 (expected: ~1 ns, the atomic load).
    g.bench_function("disabled_counter_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                obs::counter("bench.noop", black_box(i) & 1);
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_exec_with_and_without_telemetry,
    bench_enabled_recorders,
    bench_disabled_callsite
);
criterion_main!(benches);
