//! Bench for paper Figure 4: the Talg surface for Heat2D on the GTX 980
//! with tS1 fixed at 8; prints the minimizing cell (the red dot).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::figure4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = hhc_bench::bench_lab();
    let r = figure4(&lab);
    if let Some(min) = r.min_cell {
        println!(
            "[fig4] Talg min = {:.4e} s at tT = {}, tS2 = {} (size {})",
            min.talg.unwrap(),
            min.t_t,
            min.t_s2,
            r.size
        );
    }
    let mut g = c.benchmark_group("fig4_surface");
    g.bench_function("sweep_surface_heat2d", |b| {
        b.iter(|| black_box(figure4(&lab).cells.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
