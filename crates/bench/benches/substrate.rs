//! Substrate benchmarks: the building blocks every experiment leans on —
//! hexagon geometry, plan lowering, the discrete-event engine, the
//! functional tiled executor, and the model evaluation itself. These are
//! the "ablation" numbers for the design choices DESIGN.md calls out
//! (class-based plans, separable axes, cached kernel timing).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{simulate, DeviceConfig, SimWorkload};
use hhc_tiling::{exec, HexTiling, LaunchConfig, TileSizes, TilingPlan};
use std::hint::black_box;
use stencil_core::{reference, Grid, ProblemSize, StencilKind};
use time_model::{predict, MeasuredParams, ModelParams};

fn bench(c: &mut Criterion) {
    let spec = StencilKind::Jacobi2D.spec();
    let device = DeviceConfig::gtx980();

    let mut g = c.benchmark_group("substrate");

    // Hexagon point classification (the partition's hot query).
    let hx = HexTiling::new(16, 8);
    g.bench_function("hex_tile_containing_10k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for t in 0..100i64 {
                for s in 0..100i64 {
                    acc += hx.tile_containing(t, s).j;
                }
            }
            black_box(acc)
        })
    });

    // Plan lowering at a full paper size (class-based: milliseconds, not
    // the hours a per-tile representation would take).
    let size = ProblemSize::new_2d(8192, 8192, 4096);
    let tiles = TileSizes::new_2d(16, 16, 128);
    let launch = LaunchConfig::new_2d(1, 128);
    g.bench_function("plan_build_8192sq_T4096", |b| {
        b.iter(|| {
            let plan = TilingPlan::build(&spec, &size, tiles, launch).unwrap();
            black_box(plan.kernel_count())
        })
    });

    // Discrete-event simulation of the full schedule.
    let plan = TilingPlan::build(&spec, &size, tiles, launch).unwrap();
    let wl = SimWorkload::from_plan(&plan);
    g.bench_function("simulate_8192sq_T4096", |b| {
        b.iter(|| black_box(simulate(&device, &wl).unwrap().total_time))
    });

    // Model evaluation (the unit of the exhaustive sweep).
    let params = ModelParams::from_measured(&device, &MeasuredParams::paper_gtx980(3.39e-8));
    g.bench_function("model_predict", |b| {
        b.iter(|| black_box(predict(&params, &size, &tiles).talg))
    });

    // Functional tiled execution vs the reference executor (validation
    // path; small domain).
    let vsize = ProblemSize::new_2d(64, 64, 16);
    let vtiles = TileSizes::new_2d(4, 6, 8);
    let init = Grid::filled(vsize.space_extents(), 1.0);
    g.bench_function("tiled_exec_64sq_T16", |b| {
        b.iter(|| black_box(exec::run_tiled_unchecked(&spec, &vsize, vtiles, &init).len()))
    });
    g.bench_function("reference_exec_64sq_T16", |b| {
        b.iter(|| black_box(reference::run(&spec, &vsize, &init).len()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
