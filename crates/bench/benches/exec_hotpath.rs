//! Executor hot-path benchmarks: the three storage/kernel configurations
//! of the tiled executor (seed baseline, rolling window only, rolling
//! window + row kernels) and the memoized vs cold strategy evaluation.
//! Companion to `experiments --bench-exec`, which times the same paths on
//! larger workloads and persists `BENCH_exec.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use hhc_tiling::{run_tiled_with, ExecOptions, TileSizes};
use microbench::measured_params_sampled;
use std::hint::black_box;
use stencil_core::{init, ProblemSize, StencilKind};
use tile_opt::strategy::{baseline_points, evaluate_points, StrategyContext};
use tile_opt::SpaceConfig;
use time_model::ModelParams;

fn bench_exec_paths(c: &mut Criterion) {
    let spec = StencilKind::Jacobi2D.spec();
    let size = ProblemSize::new_2d(256, 256, 32);
    let tiles = TileSizes::new_2d(8, 32, 128);
    let grid = init::random(size.space_extents(), 0x42);

    let mut g = c.benchmark_group("exec_hotpath");
    g.sample_size(10);
    // Seed implementation: full space-time storage, generic per-point loop.
    g.bench_function("jacobi2d_generic_full_storage", |b| {
        b.iter(|| {
            let (out, _) =
                run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::BASELINE).unwrap();
            black_box(out.len())
        })
    });
    // Rolling window alone (storage win, same arithmetic path).
    let window_only = ExecOptions {
        checked: false,
        rolling_window: true,
        row_kernels: false,
        simd: false,
    };
    g.bench_function("jacobi2d_generic_rolling_window", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_with(&spec, &size, tiles, &grid, window_only).unwrap();
            black_box(out.len())
        })
    });
    // Rolling window + scalar row kernels (the pre-SIMD fast path).
    g.bench_function("jacobi2d_row_kernel_scalar", |b| {
        b.iter(|| {
            let (out, _) =
                run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::FAST_SCALAR).unwrap();
            black_box(out.len())
        })
    });
    // The full fast path: rolling window + vectorized row kernels.
    g.bench_function("jacobi2d_row_kernel_simd", |b| {
        b.iter(|| {
            let (out, _) = run_tiled_with(&spec, &size, tiles, &grid, ExecOptions::FAST).unwrap();
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_strategy_memoization(c: &mut Criterion) {
    let device = DeviceConfig::gtx980();
    let kind = StencilKind::Jacobi2D;
    let size = ProblemSize::new_2d(512, 512, 128);
    let measured = measured_params_sampled(&device, &kind.into(), 8, 3);
    let params = ModelParams::from_measured(&device, &measured);
    let space = SpaceConfig::default();
    let workload = gpu_sim::Workload::new(device, kind, size).expect("Jacobi2D is 2-dimensional");
    let points = baseline_points(&workload.device, workload.dim(), &space);

    let mut g = c.benchmark_group("strategy_eval");
    g.sample_size(10);
    // Cold: a fresh cache every iteration — every point simulates.
    g.bench_function("baseline_850_cold", |b| {
        b.iter(|| {
            let ctx = StrategyContext::new(&workload, &params, &space);
            black_box(evaluate_points(&ctx, &points).len())
        })
    });
    // Memoized: one shared warm cache — every point is a hit.
    let warm_ctx = StrategyContext::new(&workload, &params, &space);
    evaluate_points(&warm_ctx, &points);
    g.bench_function("baseline_850_memoized", |b| {
        b.iter(|| black_box(evaluate_points(&warm_ctx, &points).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_exec_paths, bench_strategy_memoization);
criterion_main!(benches);
