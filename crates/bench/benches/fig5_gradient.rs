//! Bench for paper Figure 5: the Gradient2D baseline-vs-candidate study
//! (850 baseline points + within-10% candidates), printing the headline
//! improvement the paper reports for this experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::figure5;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = hhc_bench::bench_lab();
    let r = figure5(&lab);
    println!(
        "[fig5] {}: baseline best {:.4} s, candidate best {:.4} s ({} candidates), improvement {:.1}%",
        r.size,
        r.baseline_best.unwrap_or(f64::NAN),
        r.candidate_best.unwrap_or(f64::NAN),
        r.candidate_count,
        100.0 * r.improvement.unwrap_or(f64::NAN)
    );
    let mut g = c.benchmark_group("fig5_gradient");
    g.sample_size(10);
    g.bench_function("study_gradient2d", |b| {
        b.iter(|| black_box(figure5(&lab).candidate_count))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
