//! Bench for paper Figure 3 / Section 5.3: one full 850-point validation
//! experiment (model sweep + machine measurement + RMSE bands), printed
//! like the paper's summary.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::validate_one;
use std::hint::black_box;
use stencil_core::{ProblemSize, StencilKind};
use tile_opt::SpaceConfig;

fn bench(c: &mut Criterion) {
    let lab = hhc_bench::bench_lab();
    let device = lab.devices[0].clone();
    let size = ProblemSize::new_2d(1024, 1024, 256);
    let space = SpaceConfig::default();
    let r = validate_one(&lab, &device, &StencilKind::Jacobi2D.into(), &size, &space);
    println!(
        "[fig3] {} {} {}: RMSE(all) = {:.1}%, top-20%: n = {}, RMSE = {:.1}%",
        r.device,
        r.benchmark,
        r.size,
        100.0 * r.rmse_all.unwrap_or(f64::NAN),
        r.top_points,
        100.0 * r.rmse_top20.unwrap_or(f64::NAN)
    );
    let mut g = c.benchmark_group("fig3_validation");
    g.sample_size(10);
    g.bench_function("validate_850_points_jacobi2d_1024", |b| {
        b.iter(|| {
            black_box(validate_one(&lab, &device, &StencilKind::Jacobi2D.into(), &size, &space).rmse_top20)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
