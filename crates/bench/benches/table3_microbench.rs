//! Bench for paper Table 3: the L / tau_sync / T_sync micro-benchmarks.
//! The measured values are printed once so the bench regenerates the
//! table's rows.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for device in DeviceConfig::paper_devices() {
        let m = microbench::measure_memory_params(&device);
        println!(
            "[table3] {}: L = {:.3e} s/GB, tau_sync = {:.3e} s, T_sync = {:.3e} s",
            device.name, m.l_s_per_gb, m.tau_sync, m.t_sync
        );
    }
    let device = DeviceConfig::gtx980();
    let mut g = c.benchmark_group("table3_microbench");
    g.sample_size(20);
    g.bench_function("measure_memory_params_gtx980", |b| {
        b.iter(|| black_box(microbench::measure_memory_params(&device).l_word))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
