//! Bench for paper Table 2: device-preset construction and occupancy
//! resolution — the structural-parameter layer every experiment uses.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{occupancy, DeviceConfig, SimWorkload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_device_presets");
    g.bench_function("construct_presets", |b| {
        b.iter(|| {
            let d = DeviceConfig::paper_devices();
            black_box(d.len())
        })
    });
    let device = DeviceConfig::gtx980();
    let wl = SimWorkload::uniform(1, 64, 8, 1024, 1024, vec![[512, 1, 1]; 8], 128, 32);
    g.bench_function("occupancy_resolution", |b| {
        b.iter(|| black_box(occupancy(&device, &wl).unwrap().k))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
