//! # hhc-bench
//!
//! Criterion benchmarks regenerating each table and figure of the paper
//! at bench-friendly scale (one bench target per experiment; see
//! `benches/`). `cargo bench --workspace` runs them all; the harness
//! prints the same rows/series the paper reports, at the reduced scale.
//!
//! The full paper-scale regeneration is the `experiments` binary
//! (`cargo run --release -p experiments -- --all --scale paper`).

use experiments::{ExperimentScale, Lab};

/// A lab at the smoke scale shared by the benches.
pub fn bench_lab() -> Lab {
    Lab::new(ExperimentScale::Smoke)
}
